// Differential equivalence fixtures for the dense-ID representation
// refactor: sweep summaries and checker reports were captured while the
// runtimes still kept per-run state in pointer-keyed maps, and these
// tests pin the flat ID-indexed representation to the exact same
// observable output — DeepEqual on stats.Summary, byte-identical on
// Report.Render — across the app × runtime matrix.
//
// Regenerate with
//
//	go test ./internal/check -run TestEquiv -update-equiv
//
// only when an intentional behavior change (new charge, new counter)
// moves the simulation itself; a representation-only change must never
// need it.

package check

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"easeio/internal/apps"
	"easeio/internal/experiments"
	"easeio/internal/stats"
)

var updateEquiv = flag.Bool("update-equiv", false, "regenerate testdata/equiv fixtures")

var equivKinds = []experiments.RuntimeKind{
	experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
}

// equivSweepApps is the sweep matrix. The factories rebuild the app per
// sweep, so every cell exercises analysis + freeze + attach + pooled runs.
var equivSweepApps = []struct {
	name    string
	factory experiments.AppFactory
}{
	{"dma", dmaFactory},
	{"temp", tempFactory},
	{"lea", func() (*apps.Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) }},
	{"fir", func() (*apps.Bench, error) { return apps.NewFIRApp(apps.DefaultFIRConfig()) }},
	{"weather", func() (*apps.Bench, error) { return apps.NewWeatherApp(apps.DefaultWeatherConfig()) }},
}

// equivSweepCell is one fixture entry: the aggregate of a pooled
// 25-seed timer-driven sweep.
type equivSweepCell struct {
	App     string
	Runtime string
	Summary stats.Summary
}

func equivSweepConfig() experiments.Config {
	return experiments.Config{Runs: 25, BaseSeed: 11, Workers: 2}
}

const equivSweepPath = "testdata/equiv/sweep.json"

// quickEquivCell reports whether the cell stays in the -short subset.
func quickEquivCell(app string, kind string) bool {
	if app != "dma" && app != "temp" {
		return false
	}
	return kind == experiments.EaseIO.String() || kind == experiments.Alpaca.String()
}

func TestEquivSweepSummaries(t *testing.T) {
	if *updateEquiv {
		var cells []equivSweepCell
		for _, a := range equivSweepApps {
			for _, kind := range equivKinds {
				sum, err := experiments.RunMany(equivSweepConfig(), a.factory, kind)
				if err != nil {
					t.Fatalf("%s/%s: %v", a.name, kind, err)
				}
				cells = append(cells, equivSweepCell{App: a.name, Runtime: kind.String(), Summary: sum})
			}
		}
		writeEquivFixture(t, equivSweepPath, mustMarshalIndent(t, cells))
		return
	}

	data, err := os.ReadFile(equivSweepPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-equiv): %v", err)
	}
	var cells []equivSweepCell
	if err := json.Unmarshal(data, &cells); err != nil {
		t.Fatal(err)
	}
	factories := make(map[string]experiments.AppFactory, len(equivSweepApps))
	for _, a := range equivSweepApps {
		factories[a.name] = a.factory
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.App+"/"+cell.Runtime, func(t *testing.T) {
			if testing.Short() && !quickEquivCell(cell.App, cell.Runtime) {
				t.Skip("full matrix runs without -short")
			}
			kind, err := experiments.ParseRuntimeKind(cell.Runtime)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := experiments.RunMany(equivSweepConfig(), factories[cell.App], kind)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sum, cell.Summary) {
				t.Errorf("sweep summary diverged from recorded representation:\n got %+v\nwant %+v",
					sum, cell.Summary)
			}
		})
	}
}

// equivCheckCells mirrors the TestReplayModesByteIdentical matrix: the
// checker is the most state-sensitive consumer (checkpoints, suffix
// replay, outcome hashing), so its rendered reports pin the whole
// device+runtime state representation at once.
func equivCheckCells() []struct {
	name    string
	factory experiments.AppFactory
	kind    experiments.RuntimeKind
} {
	var cells []struct {
		name    string
		factory experiments.AppFactory
		kind    experiments.RuntimeKind
	}
	for _, k := range equivKinds {
		cells = append(cells, struct {
			name    string
			factory experiments.AppFactory
			kind    experiments.RuntimeKind
		}{"fig6_" + k.String(), Fig6Bench, k})
		cells = append(cells, struct {
			name    string
			factory experiments.AppFactory
			kind    experiments.RuntimeKind
		}{"temp_" + k.String(), tempFactory, k})
		cells = append(cells, struct {
			name    string
			factory experiments.AppFactory
			kind    experiments.RuntimeKind
		}{"dma_" + k.String(), dmaFactory, k})
	}
	return cells
}

func TestEquivCheckReports(t *testing.T) {
	cfg := Config{Exhaustive: true, Workers: 2}
	for _, cell := range equivCheckCells() {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			if testing.Short() && !*updateEquiv && cell.name != "fig6_EaseIO" {
				t.Skip("full matrix runs without -short")
			}
			rep, err := Run(context.Background(), cell.factory, cell.kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "equiv", "check_"+cell.name+".txt")
			if *updateEquiv {
				writeEquivFixture(t, path, []byte(rep.Render()))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-equiv): %v", err)
			}
			if got := rep.Render(); got != string(want) {
				t.Errorf("check report diverged from recorded representation:\n got:\n%s\nwant:\n%s",
					got, want)
			}
		})
	}
}

// TestEquivCheckReportsAdaptive pins the grid + outcome-hash bisection
// path — the part of the checker most sensitive to exploration-order
// changes — with the same byte-identical rendered-report contract as
// the exhaustive matrix. Recorded against the single-failure checker
// before the k-failure generalization; a k=1 run must reproduce these
// bytes forever.
func TestEquivCheckReportsAdaptive(t *testing.T) {
	cfg := Config{Workers: 2}
	for _, cell := range equivCheckCells() {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			if testing.Short() && !*updateEquiv && cell.name != "fig6_Alpaca" {
				t.Skip("full matrix runs without -short")
			}
			rep, err := Run(context.Background(), cell.factory, cell.kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "equiv", "check_adaptive_"+cell.name+".txt")
			if *updateEquiv {
				writeEquivFixture(t, path, []byte(rep.Render()))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-equiv): %v", err)
			}
			if got := rep.Render(); got != string(want) {
				t.Errorf("adaptive check report diverged from recorded representation:\n got:\n%s\nwant:\n%s",
					got, want)
			}
		})
	}
}

func mustMarshalIndent(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func writeEquivFixture(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", path, len(data))
}
