// Checkpoint recording for the suffix-replay path. Replaying a failure
// point from boot costs the whole prefix again even though every replay
// shares it with the golden run; instead, the recorder re-runs the
// golden continuous pass with a snapshotting CutSink and captures one
// device+runtime checkpoint per pending cut point, which a replayer then
// restores and resumes with the injected failure (kernel.Snapshot /
// kernel.ResumeWithFailure). Rounds are recorded in bounded batches so a
// large exhaustive round holds at most checkpointBatch checkpoints in
// memory at once, and a batch's checkpoints are recycled once its
// replays finish — recording is allocation-free at steady state.

package check

import (
	"fmt"
	"sync"
	"time"

	"easeio/internal/apps"
	"easeio/internal/kernel"
	"easeio/internal/power"
)

// checkpointBatch bounds how many checkpoints one recording pass
// captures. Each batch costs one extra golden pass, which the replays it
// feeds amortize many times over; the bound keeps peak memory
// proportional to the batch, not the round.
const checkpointBatch = 256

// checkpoint pairs a device checkpoint with the runtime's volatile
// state, both captured at the same charge-slice boundary.
type checkpoint struct {
	dev *kernel.Checkpoint
	rt  any
}

// snapSink is the CutSink of a recording pass: at each targeted cut
// on-time it snapshots the device and the runtime. Targets must be
// ascending (cut on-times strictly increase within a run).
type snapSink struct {
	targets []time.Duration // cut on-times to snapshot, ascending
	idxs    []int           // candidate index per target
	next    int
	dev     *kernel.Device
	rt      kernel.Snapshotter
	rtInto  kernel.SnapshotterInto // non-nil when rt supports state reuse
	cps     map[int]*checkpoint
}

// NoteCut implements kernel.CutSink.
func (s *snapSink) NoteCut(onTime time.Duration) {
	if s.next < len(s.targets) && onTime == s.targets[s.next] {
		cp := ckptGet()
		cp.dev = s.dev.SnapshotInto(cp.dev)
		if s.rtInto != nil {
			cp.rt = s.rtInto.SnapshotStateInto(cp.rt)
		} else {
			cp.rt = s.rt.SnapshotState()
		}
		s.cps[s.idxs[s.next]] = cp
		s.next++
	}
}

// recorder re-runs the golden continuous pass once per batch on the
// golden session's own device, runtime and app — the pass reproduces
// the golden run exactly through the same reset path sweeps use
// (Device.Reset + Resetter.Reset + RunAttached). The runtime must
// implement both kernel.Resetter and kernel.Snapshotter; Run falls back
// to from-boot replay for runtimes that don't.
type recorder struct {
	bench *apps.Bench
	rt    kernel.Hooks
	dev   *kernel.Device
	seed  int64
}

// ckptPool recycles checkpoints (and, through SnapshotInto, their memory
// and stats buffers) across batches and across Run calls. An exhaustive
// round on a small app fits one batch, so a per-recorder free list would
// never see a recycled checkpoint; the process-wide pool is what makes
// recording allocation-free at steady state.
var ckptPool = sync.Pool{New: func() any { return &checkpoint{} }}

// newRecorder wraps the golden pass's already-run device, runtime and
// app for checkpoint-recording re-runs.
func newRecorder(bench *apps.Bench, rt kernel.Hooks, dev *kernel.Device, seed int64) *recorder {
	return &recorder{bench: bench, rt: rt, dev: dev, seed: seed}
}

// ckptGet pops a recycled checkpoint, or allocates a fresh one.
func ckptGet() *checkpoint {
	return ckptPool.Get().(*checkpoint)
}

// ckptRecycle returns a batch's checkpoints to the pool once their
// replays are done. The checkpoints must no longer be referenced. cp.rt
// is kept: SnapshotterInto runtimes overwrite its storage in place on
// the next recording pass instead of reallocating.
func ckptRecycle(cps map[int]*checkpoint) {
	for _, cp := range cps {
		ckptPool.Put(cp)
	}
}

// recycle is ckptRecycle under the recorder's historical name.
func (r *recorder) recycle(cps map[int]*checkpoint) { ckptRecycle(cps) }

// record re-runs the golden pass and returns one checkpoint per
// requested candidate index (idxs ascending, indexing cuts).
func (r *recorder) record(cuts []time.Duration, idxs []int) (map[int]*checkpoint, error) {
	sink := &snapSink{
		targets: make([]time.Duration, len(idxs)),
		idxs:    idxs,
		dev:     r.dev,
		rt:      r.rt.(kernel.Snapshotter),
		cps:     make(map[int]*checkpoint, len(idxs)),
	}
	sink.rtInto, _ = r.rt.(kernel.SnapshotterInto)
	for i, idx := range idxs {
		sink.targets[i] = cuts[idx]
	}

	r.dev.Reset(power.Continuous{}, r.seed)
	if err := r.rt.(kernel.Resetter).Reset(r.dev); err != nil {
		return nil, fmt.Errorf("check: recording pass reset: %w", err)
	}
	r.dev.Cuts = sink
	if err := kernel.RunAttached(r.dev, r.rt, r.bench.App); err != nil {
		return nil, fmt.Errorf("check: recording pass: %w", err)
	}
	if sink.next != len(sink.targets) {
		return nil, fmt.Errorf("check: recording pass hit %d of %d cut points — golden run not reproducible",
			sink.next, len(sink.targets))
	}
	return sink.cps, nil
}
