// The exported, serializable view of a device Checkpoint. A Checkpoint's
// fields are opaque on purpose — restore paths depend on invariants the
// kernel owns — so shipping one to a remote worker goes through this
// explicit flattening instead of reflection. The byte layout lives in
// internal/wire; this file defines what a checkpoint *is* on the wire
// and validates imports so a decoder can feed it untrusted data.
//
// Runtime hook state (kernel.Snapshotter's opaque `any`) is deliberately
// not part of the device checkpoint and therefore not part of this view:
// remote suffix replay re-derives it from a local golden pass. Encoding
// per-runtime hook state is the piece the k-failure roadmap item will
// add runtime by runtime.

package kernel

import (
	"fmt"
	"time"

	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/timekeeper"
)

// CheckpointState is the flattened form of a Checkpoint. HasSupply
// distinguishes "the snapshotted device's supply was not Snapshottable"
// from a zero-valued supply state.
type CheckpointState struct {
	Mem mem.SnapshotState

	// The clock position (timekeeper.State's components).
	Wall, Uptime, OnTime time.Duration
	Boots                int

	// The work ledger: committed buckets plus the pending attempt pools.
	Committed [stats.NumBuckets]stats.Totals
	Pending   [2]stats.Totals

	// Run is the run-statistics record at the checkpoint.
	Run *stats.Run

	// The peripheral randomness position.
	RandSeed  int64
	RandDraws uint64

	// The supply's state, when the snapshotted supply supported it.
	HasSupply  bool
	SupplyName string
	Supply     power.WireState
}

// ExportState flattens the checkpoint. Slices in the result alias the
// checkpoint's storage — treat them as read-only and do not retain them
// past the checkpoint's next reuse. It fails only when the supply state
// is of a type power.ExportState does not know.
func (cp *Checkpoint) ExportState() (CheckpointState, error) {
	wall, uptime, onTime, boots := cp.clock.Parts()
	committed, pending := cp.ledger.Parts()
	st := CheckpointState{
		Mem:       cp.mem.Export(),
		Wall:      wall,
		Uptime:    uptime,
		OnTime:    onTime,
		Boots:     boots,
		Committed: committed,
		Pending:   pending,
		Run:       cp.run,
		RandSeed:  cp.randSeed,
		RandDraws: cp.randDraws,
	}
	if cp.supply != nil {
		ws, ok := power.ExportState(cp.supply)
		if !ok {
			return CheckpointState{}, fmt.Errorf("kernel: checkpoint supply state %T is not serializable", cp.supply)
		}
		st.HasSupply = true
		st.SupplyName = cp.supplyName
		st.Supply = ws
	}
	return st, nil
}

// ImportCheckpoint rebuilds a restorable Checkpoint from its flattened
// form, taking ownership of the state's slices and Run record. The
// result behaves exactly like a locally snapshotted checkpoint: Restore
// it into any device with the same blueprint attached.
func ImportCheckpoint(st CheckpointState) (*Checkpoint, error) {
	ms, err := mem.ImportSnapshot(st.Mem)
	if err != nil {
		return nil, err
	}
	if st.Run == nil {
		return nil, fmt.Errorf("kernel: checkpoint state has no run record")
	}
	cp := &Checkpoint{
		mem:       ms,
		clock:     timekeeper.MakeState(st.Wall, st.Uptime, st.OnTime, st.Boots),
		ledger:    MakeLedger(st.Committed, st.Pending),
		run:       st.Run,
		randSeed:  st.RandSeed,
		randDraws: st.RandDraws,
	}
	if st.HasSupply {
		ss, err := power.ImportState(st.Supply)
		if err != nil {
			return nil, err
		}
		cp.supplyName, cp.supply = st.SupplyName, ss
	}
	return cp, nil
}
