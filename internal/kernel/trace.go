// Execution tracing: an optional, measurement-world event stream used by
// easeio-sim's -trace/-timeline flags, the Chrome trace_event exporter
// (chrometrace.go) and tests that assert on runtime behaviour. Tracing
// costs the simulated device nothing, and a nil tracer costs the host
// close to nothing (one predictable branch — see BenchmarkTraceOff).

package kernel

import (
	"fmt"
	"io"
	"time"
)

// EventKind classifies a trace event. The kinds form the event taxonomy
// of DESIGN.md §12: device power edges, task lifecycle, I/O and DMA
// re-execution decisions, and EaseIO's regional privatization.
type EventKind uint8

// The event taxonomy.
const (
	// EvBoot marks a power-on edge: the device (re)boots.
	EvBoot EventKind = iota
	// EvPowerFailure marks a power-off edge: the supply died mid-attempt.
	EvPowerFailure
	// EvRecharge notes how long the device stayed dark before the next boot.
	EvRecharge
	// EvTaskBegin and EvTaskCommit bracket a committed task attempt;
	// EvTaskAbort closes an attempt a power failure interrupted.
	EvTaskBegin
	EvTaskCommit
	EvTaskAbort
	// EvIOExec and EvIOSkip record an I/O site's re-execution decision
	// (the detail carries the semantic taken and redundancy).
	EvIOExec
	EvIOSkip
	// EvDMAClass records the runtime classification of a DMA transfer;
	// EvDMAExec and EvDMASkip its re-execution decision.
	EvDMAClass
	EvDMAExec
	EvDMASkip
	// EvBlockSkip and EvBlockViolation record atomic I/O block decisions.
	EvBlockSkip
	EvBlockViolation
	// EvRegionPrivatize and EvRegionRestore record regional privatization
	// (privatize on first entry, restore on re-execution).
	EvRegionPrivatize
	EvRegionRestore

	numEventKinds
)

// eventKindNames are the stable wire names of the kinds — the strings the
// text timeline prints and the Chrome exporter uses as categories.
var eventKindNames = [numEventKinds]string{
	EvBoot:            "boot",
	EvPowerFailure:    "power-failure",
	EvRecharge:        "recharge",
	EvTaskBegin:       "task-begin",
	EvTaskCommit:      "task-commit",
	EvTaskAbort:       "task-abort",
	EvIOExec:          "io-exec",
	EvIOSkip:          "io-skip",
	EvDMAClass:        "dma-class",
	EvDMAExec:         "dma-exec",
	EvDMASkip:         "dma-skip",
	EvBlockSkip:       "block-skip",
	EvBlockViolation:  "block-violation",
	EvRegionPrivatize: "region-privatize",
	EvRegionRestore:   "region-restore",
}

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// TraceEvent is one timeline entry.
type TraceEvent struct {
	// Wall and OnTime timestamp the event (persistent and powered-on
	// clocks).
	Wall, OnTime time.Duration
	// Boot is the boot number the event happened in.
	Boot int
	// Kind classifies the event.
	Kind EventKind
	// Detail names the task/site/region involved.
	Detail string
}

// String renders one line of the timeline.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%10v on=%-10v boot=%-3d %-16s %s",
		e.Wall.Round(time.Microsecond), e.OnTime.Round(time.Microsecond),
		e.Boot, e.Kind, e.Detail)
}

// Tracer receives the event stream.
type Tracer interface {
	Event(TraceEvent)
}

// TraceBuffer is a Tracer that retains events in memory.
type TraceBuffer struct {
	Events []TraceEvent
}

// Event implements Tracer.
func (b *TraceBuffer) Event(e TraceEvent) { b.Events = append(b.Events, e) }

// Reset discards recorded events so the buffer can follow a reused device
// into its next run (Device.Reset calls this through the Tracer).
func (b *TraceBuffer) Reset() { b.Events = b.Events[:0] }

// Count returns how many events of the given kind were recorded.
func (b *TraceBuffer) Count(kind EventKind) int {
	n := 0
	for _, e := range b.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Dump writes the timeline to w.
func (b *TraceBuffer) Dump(w io.Writer) {
	for _, e := range b.Events {
		fmt.Fprintln(w, e)
	}
}

// TraceWriter is a Tracer that streams events to an io.Writer.
type TraceWriter struct{ W io.Writer }

// Event implements Tracer.
func (t TraceWriter) Event(e TraceEvent) { fmt.Fprintln(t.W, e) }

// TraceOn reports whether a tracer is attached. Hot paths guard their
// Trace calls with it so the variadic argument slice is never
// materialized on untraced runs (the common case for sweeps).
func (d *Device) TraceOn() bool { return d.Tracer != nil }

// Trace emits an event if a tracer is attached to the device. Runtimes
// and the engine call it at decision points; the fmt.Sprintf cost is only
// paid when tracing is on and the event carries arguments.
func (d *Device) Trace(kind EventKind, format string, args ...any) {
	if d.Tracer == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	d.Tracer.Event(TraceEvent{
		Wall:   d.Clock.Now(),
		OnTime: d.Clock.OnTime(),
		Boot:   d.Clock.Boots(),
		Kind:   kind,
		Detail: detail,
	})
}
