// Execution tracing: an optional, measurement-world event stream used by
// easeio-sim's -trace flag and by tests that assert on runtime behaviour.
// Tracing costs the simulated device nothing.

package kernel

import (
	"fmt"
	"io"
	"time"
)

// TraceEvent is one timeline entry.
type TraceEvent struct {
	// Wall and OnTime timestamp the event (persistent and powered-on
	// clocks).
	Wall, OnTime time.Duration
	// Boot is the boot number the event happened in.
	Boot int
	// Kind classifies the event ("boot", "power-failure", "task-begin",
	// "task-commit", "io-exec", "io-skip", "dma-exec", "dma-skip",
	// "region-privatize", "region-restore", "block-skip", ...).
	Kind string
	// Detail names the task/site/region involved.
	Detail string
}

// String renders one line of the timeline.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%10v on=%-10v boot=%-3d %-16s %s",
		e.Wall.Round(time.Microsecond), e.OnTime.Round(time.Microsecond),
		e.Boot, e.Kind, e.Detail)
}

// Tracer receives the event stream.
type Tracer interface {
	Event(TraceEvent)
}

// TraceBuffer is a Tracer that retains events in memory.
type TraceBuffer struct {
	Events []TraceEvent
}

// Event implements Tracer.
func (b *TraceBuffer) Event(e TraceEvent) { b.Events = append(b.Events, e) }

// Reset discards recorded events so the buffer can follow a reused device
// into its next run (Device.Reset calls this through the Tracer).
func (b *TraceBuffer) Reset() { b.Events = b.Events[:0] }

// Count returns how many events of the given kind were recorded.
func (b *TraceBuffer) Count(kind string) int {
	n := 0
	for _, e := range b.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Dump writes the timeline to w.
func (b *TraceBuffer) Dump(w io.Writer) {
	for _, e := range b.Events {
		fmt.Fprintln(w, e)
	}
}

// TraceWriter is a Tracer that streams events to an io.Writer.
type TraceWriter struct{ W io.Writer }

// Event implements Tracer.
func (t TraceWriter) Event(e TraceEvent) { fmt.Fprintln(t.W, e) }

// Trace emits an event if a tracer is attached to the device. Runtimes
// and the engine call it at decision points; the fmt.Sprintf cost is only
// paid when tracing is on.
func (d *Device) Trace(kind, format string, args ...any) {
	if d.Tracer == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	d.Tracer.Event(TraceEvent{
		Wall:   d.Clock.Now(),
		OnTime: d.Clock.OnTime(),
		Boot:   d.Clock.Boots(),
		Kind:   kind,
		Detail: detail,
	})
}
