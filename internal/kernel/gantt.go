// Gantt: an ASCII timeline of a traced run — task attempts, I/O
// decisions and outages on a shared wall-clock axis, for easeio-sim's
// -gantt flag. Like Figure 1's energy trace, but of the execution.

package kernel

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderGantt draws the trace buffer's timeline with the given width in
// character cells. Each task gets a lane; the power lane shows on/off.
func RenderGantt(buf *TraceBuffer, width int, w io.Writer) {
	if len(buf.Events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	if width < 20 {
		width = 20
	}
	end := buf.Events[len(buf.Events)-1].Wall
	if end <= 0 {
		end = time.Millisecond
	}
	cell := func(t time.Duration) int {
		c := int(int64(t) * int64(width-1) / int64(end))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Power lane: '#' while on, '.' while off. Off intervals start at a
	// power-failure event and end at the next boot.
	power := make([]byte, width)
	for i := range power {
		power[i] = '#'
	}
	var offFrom time.Duration
	inOff := false
	mark := func(from, to time.Duration) {
		for c := cell(from); c <= cell(to); c++ {
			power[c] = '.'
		}
	}
	for _, e := range buf.Events {
		switch e.Kind {
		case EvPowerFailure:
			offFrom, inOff = e.Wall, true
		case EvBoot:
			if inOff {
				mark(offFrom, e.Wall)
				inOff = false
			}
		}
	}
	if inOff {
		mark(offFrom, end)
	}

	// Task lanes: '=' spans an attempt; 'X' marks an interrupted attempt,
	// 'C' a commit.
	type span struct {
		from time.Duration
		to   time.Duration
		mark byte
	}
	lanes := map[string][]span{}
	var order []string
	open := map[string]time.Duration{}
	closeOpen := func(at time.Duration, mark byte) {
		for name, from := range open {
			lanes[name] = append(lanes[name], span{from, at, mark})
			delete(open, name)
		}
	}
	taskName := func(detail string) string {
		if i := strings.IndexByte(detail, ' '); i > 0 {
			return detail[:i]
		}
		return detail
	}
	for _, e := range buf.Events {
		switch e.Kind {
		case EvTaskBegin:
			name := taskName(e.Detail)
			if _, seen := lanes[name]; !seen {
				lanes[name] = nil
				order = append(order, name)
			}
			closeOpen(e.Wall, 'X') // a new begin implies the old attempt died
			open[name] = e.Wall
		case EvTaskCommit:
			name := taskName(e.Detail)
			if from, ok := open[name]; ok {
				lanes[name] = append(lanes[name], span{from, e.Wall, 'C'})
				delete(open, name)
			}
		case EvPowerFailure:
			closeOpen(e.Wall, 'X')
		}
	}
	closeOpen(end, 'X')

	fmt.Fprintf(w, "%-10s |%s| 0 .. %v\n", "power", string(power), end.Round(time.Microsecond))
	for _, name := range order {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		for _, s := range lanes[name] {
			from, to := cell(s.from), cell(s.to)
			for c := from; c <= to; c++ {
				lane[c] = '='
			}
			lane[to] = s.mark
		}
		fmt.Fprintf(w, "%-10s |%s|\n", name, string(lane))
	}
	fmt.Fprintln(w, "legend: '='=attempt  C=commit  X=interrupted  '.'=recharging")
}
