// The engine: boots the device, runs task attempts, turns power failures
// into reboots, and finishes when the runtime reports the app done.

package kernel

import (
	"fmt"
	"time"

	"easeio/internal/mcu"
	"easeio/internal/power"
	"easeio/internal/task"
)

// maxBoots bounds a run so that a non-terminating configuration (a task
// whose energy cost exceeds the budget — the paper's "non-termination
// bug") surfaces as an error instead of an infinite loop.
const maxBoots = 200_000

// RunApp executes app on dev under runtime rt until completion. It
// returns an error for structural failures (attach errors, tasks that do
// not transition, non-termination); power failures are not errors — they
// are the phenomenon under study.
func RunApp(dev *Device, rt Hooks, app *task.App) error {
	if err := app.Validate(); err != nil {
		return err
	}
	if err := rt.Attach(dev, app); err != nil {
		return fmt.Errorf("kernel: attach %s to %s: %w", app.Name, rt.Name(), err)
	}
	return RunAttached(dev, rt, app)
}

// RunAttached executes app on a device the runtime is already attached to.
// It is the reuse-path entry point: after Device.Reset plus a runtime
// Reset (see Resetter), calling RunAttached reproduces exactly the run a
// fresh device and attach would have produced for the same seed.
func RunAttached(dev *Device, rt Hooks, app *task.App) error {
	dev.Run.App = app.Name
	dev.Run.Runtime = rt.Name()
	return runLoop(dev, rt, app, false)
}

// ResumeWithFailure continues a run from a device state restored to a
// charge-slice boundary (Device.Restore of a Checkpoint taken by a
// CutSink, plus the runtime's Snapshotter restore), applying the power
// failure that a supply firing at exactly that boundary would have
// caused: the pending attempt is wasted, volatile memory is cleared, the
// supply recharges, and execution proceeds through the normal reboot
// loop to completion. The checker's checkpointed replay path is built on
// this: golden-prefix state + ResumeWithFailure is byte-equivalent to a
// full from-boot run with one scheduled failure at the same cut, except
// that no task-abort trace event is emitted for the interrupted attempt
// (the unwind happened in the pass that took the checkpoint).
// dev.Run.App and dev.Run.Runtime are restored from the checkpoint and
// left untouched.
func ResumeWithFailure(dev *Device, rt Hooks, app *task.App) error {
	return runLoop(dev, rt, app, true)
}

// runLoop is the engine's reboot loop. With failed=false it starts with
// a clean boot; with failed=true it first handles a power failure
// already in effect at the current device state.
func runLoop(dev *Device, rt Hooks, app *task.App, failed bool) error {
	ctx := &dev.ctx
	*ctx = Ctx{Dev: dev, RT: rt}
	ctx.initCompiled(app)
	for {
		if failed {
			dev.Run.PowerFailures++
			dev.Ledger.FailAttempt()
			dev.Mem.PowerFailure()
			if dev.TraceOn() {
				dev.Trace(EvPowerFailure, "#%d", dev.Run.PowerFailures)
			}
			off := dev.Supply.Recharge(dev.Clock.Now())
			dev.Clock.Off(off)
			if dev.TraceOn() {
				dev.Trace(EvRecharge, "off for %v", off)
			}
			if h, ok := dev.Supply.(*power.Harvested); ok && h.Dead() {
				dev.Run.Stuck = true
				finish(dev, rt, app)
				return nil
			}
			if dev.Clock.Boots() > maxBoots {
				return fmt.Errorf("kernel: %s/%s did not terminate within %d boots (non-termination bug)",
					app.Name, rt.Name(), maxBoots)
			}
		}
		var err error
		failed, err = bootAndRun(ctx)
		if err != nil {
			return err
		}
		if !failed {
			break
		}
	}
	finish(dev, rt, app)
	return nil
}

// bootAndRun charges the boot path, runs the runtime's recovery hook, and
// executes tasks until the app completes or a power failure unwinds the
// attempt. Failures during boot itself are recovered exactly like
// mid-task failures: a supply too weak to even boot surfaces as
// non-termination, which is the physically correct outcome.
func bootAndRun(ctx *Ctx) (failed bool, err error) {
	var attempt *task.Task // the task in flight, for the abort event
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(powerFailure); ok {
				if attempt != nil && ctx.Dev.TraceOn() {
					ctx.Dev.Trace(EvTaskAbort, "%s", attempt.Name)
				}
				failed = true
				return
			}
			panic(r)
		}
	}()
	ctx.wastedDepth = 0
	ctx.fresh = ctx.fresh[:0]
	ctx.Dev.Clock.Boot()
	if ctx.Dev.TraceOn() {
		ctx.Dev.Trace(EvBoot, "#%d", ctx.Dev.Clock.Boots())
	}
	ctx.ChargeOverheadCycles(mcu.BootCycles)
	ctx.RT.OnBoot(ctx)
	for {
		t := ctx.RT.CurrentTask()
		if t == nil {
			return false, nil
		}
		ctx.Dev.Run.TaskAttempts++
		ctx.transitioned = false
		ctx.fresh = ctx.fresh[:0]
		if ctx.Dev.TraceOn() {
			ctx.Dev.Trace(EvTaskBegin, "%s (attempt %d)", t.Name, ctx.Dev.Run.TaskAttempts)
		}
		attempt = t
		ctx.RT.BeginTask(ctx, t)
		if k := ctx.kernelOf(t); k != nil {
			ctx.runKernel(k)
		} else {
			t.Body(ctx)
		}
		if !ctx.transitioned {
			return false, fmt.Errorf("kernel: task %q returned without Next/Done", t.Name)
		}
		attempt = nil
		// The freshness oracle's measurement point: a committing task has
		// irrevocably consumed its inputs, so each freshness-bounded site it
		// called is charged the wall-clock age of its last physical sample —
		// off-time counts, which is exactly what distinguishes a consistent
		// but stale value from a timely one.
		if len(ctx.fresh) > 0 {
			now := ctx.Dev.Clock.Now()
			for _, s := range ctx.fresh {
				if at := ctx.Dev.Run.SampleAt(s.ID); at >= 0 {
					if age := now - at; age > s.Freshness {
						ctx.Dev.Run.NoteStale(s.Name, age, s.Freshness, now)
					}
				}
			}
			ctx.fresh = ctx.fresh[:0]
		}
		ctx.Dev.Run.TaskCommits++
		if ctx.Dev.TraceOn() {
			ctx.Dev.Trace(EvTaskCommit, "%s", t.Name)
		}
	}
}

// finish exports the ledger and evaluates output correctness.
func finish(dev *Device, rt Hooks, app *task.App) {
	dev.Ledger.Export(dev.Run)
	dev.Run.WallTime = dev.Clock.Now()
	dev.Run.OnTime = dev.Clock.OnTime()
	if app.CheckFast != nil && !dev.NoCompile && !dev.Run.Stuck {
		// The bulk checker twin: decides exactly what CheckOutput decides
		// (pinned per app by tests) but scans with range comparisons. The
		// scanner and its interface value are reused across pooled runs.
		dev.checker = checkMem{dev: dev, rt: rt}
		if dev.checkerFace == nil {
			dev.checkerFace = &dev.checker
		}
		dev.Run.Correct = app.CheckFast(dev.checkerFace)
	} else if app.CheckOutput != nil && !dev.Run.Stuck {
		// Checkers scan variables word by word; the device's reusable
		// checkReader memoizes the master-address lookup per variable and
		// the bound method value is built once per device.
		dev.reader = checkReader{dev: dev, rt: rt}
		if dev.readerFunc == nil {
			dev.readerFunc = dev.reader.read
		}
		dev.Run.Correct = app.CheckOutput(dev.readerFunc)
	} else {
		dev.Run.Correct = !dev.Run.Stuck
	}
}

// GoldenOnTime runs app once under continuous power on a fresh device and
// returns the pure execution time — the App bar in Figures 7 and 10.
func GoldenOnTime(newRT func() Hooks, app *task.App, seed int64) (time.Duration, error) {
	dev := NewDevice(power.Continuous{}, seed)
	if err := RunApp(dev, newRT(), app); err != nil {
		return 0, err
	}
	return dev.Clock.OnTime(), nil
}
