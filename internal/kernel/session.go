// Session: the blueprint/instance split at the kernel level. An analyzed
// app is a blueprint shared by every run; the device and the attached
// runtime are the instance. A Session owns one device + one runtime
// instance and replays runs across seeds, resetting in place when the
// runtime supports it instead of rebuilding the world per run.

package kernel

import (
	"fmt"

	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
)

// Session runs one app under one runtime instance many times, reusing the
// device between runs. If the runtime implements Resetter, subsequent
// runs reset the device and runtime in place (no reallocation, no
// re-attach); otherwise each run rebuilds a fresh device and re-attaches,
// which is always correct but slower.
type Session struct {
	rt     Hooks
	app    *task.App
	supply power.Supply
	// Tracer, when non-nil, is installed on the device before every run.
	Tracer Tracer
	// Cuts, when non-nil, is installed on the device before every run and
	// receives each run's charge-slice boundaries (see CutSink).
	Cuts CutSink

	dev *Device
}

// NewSession creates a session for app under rt, powered by supply. The
// app must validate; analysis state is the runtime's concern (Attach
// reports un-analyzed apps exactly as it does on the rebuild path).
func NewSession(rt Hooks, app *task.App, supply power.Supply) *Session {
	return &Session{rt: rt, app: app, supply: supply}
}

// Device returns the device of the most recent run (nil before the first
// run). Experiment harnesses use it to inspect final memory.
func (s *Session) Device() *Device { return s.dev }

// Runtime returns the session's runtime instance.
func (s *Session) Runtime() Hooks { return s.rt }

// Run executes the app once with the given seed and returns the run's
// statistics. The first run attaches the runtime to a fresh device; later
// runs reuse it when the runtime implements Resetter. A structural error
// (attach failure, non-termination) discards the device so the next call
// starts from a clean attach.
//
// The returned record is the device's own, reset in place by the next
// Run on the reuse path — read it (or Clone it) before running again.
func (s *Session) Run(seed int64) (*stats.Run, error) {
	if err := s.prepare(seed); err != nil {
		return nil, err
	}
	if err := RunAttached(s.dev, s.rt, s.app); err != nil {
		s.dev = nil
		return nil, err
	}
	return s.dev.Run, nil
}

// prepare brings the session's device to the ready-to-run state for seed:
// a fresh device plus attach on the first run (or for runtimes without
// Resetter), an in-place device + runtime reset afterwards. It is the
// shared front half of Run and of the batch scheduler (see batch.go),
// which drives the reboot loop itself instead of calling RunAttached.
func (s *Session) prepare(seed int64) error {
	r, ok := s.rt.(Resetter)
	if s.dev == nil || !ok {
		if err := s.app.Validate(); err != nil {
			return err
		}
		dev := NewDevice(s.supply, seed)
		dev.Tracer = s.Tracer
		dev.Cuts = s.Cuts
		if err := s.rt.Attach(dev, s.app); err != nil {
			return fmt.Errorf("kernel: attach %s to %s: %w", s.app.Name, s.rt.Name(), err)
		}
		s.dev = dev
		return nil
	}
	s.dev.Tracer = s.Tracer
	s.dev.Cuts = s.Cuts
	s.dev.Reset(s.supply, seed)
	if err := r.Reset(s.dev); err != nil {
		s.dev = nil
		return err
	}
	return nil
}
