// Work-accounting ledger: every charged cost lands in a pending attempt
// pool and moves to a committed bucket when the enclosing task — or, for
// EaseIO, the enclosing I/O span — commits.

package kernel

import (
	"time"

	"easeio/internal/stats"
	"easeio/internal/units"
)

// Ledger tracks committed and pending work for one run.
//
// Pending work belongs to the current task attempt. When the attempt is
// interrupted by a power failure the pending pool drains into the Wasted
// bucket; when the task commits it drains into App and Overhead. EaseIO
// additionally commits completed I/O operations mid-task (their lock flag
// is durable, so their work is never redone even if the surrounding
// attempt fails); it does so through spans.
type Ledger struct {
	committed [stats.NumBuckets]stats.Totals
	pending   [2]stats.Totals // index 0 = useful, 1 = overhead
}

// Reset zeroes all committed and pending work, for device reuse across
// runs.
func (l *Ledger) Reset() { *l = Ledger{} }

// SpanMark captures the pending pool at the start of a commitable span.
type SpanMark struct {
	useful, overhead stats.Totals
}

// Charge adds work to the pending pool.
func (l *Ledger) Charge(overhead bool, dt time.Duration, e units.Energy) {
	i := 0
	if overhead {
		i = 1
	}
	l.pending[i].Add(stats.Totals{T: dt, E: e})
}

// ChargeWasted commits work directly to the Wasted bucket. Redundant
// re-executions of already-completed I/O use this path: whether or not the
// surrounding attempt eventually commits, that work would not exist under
// continuous power.
func (l *Ledger) ChargeWasted(dt time.Duration, e units.Energy) {
	l.committed[stats.Wasted].Add(stats.Totals{T: dt, E: e})
}

// Mark opens a span over subsequently charged work.
func (l *Ledger) Mark() SpanMark {
	return SpanMark{useful: l.pending[0], overhead: l.pending[1]}
}

// CommitSince commits all work charged after m: useful work moves to App,
// overhead to Overhead. Work already committed by nested spans is not
// double-counted because committing removes it from the pending pool.
func (l *Ledger) CommitSince(m SpanMark) {
	du := l.pending[0].Sub(m.useful)
	do := l.pending[1].Sub(m.overhead)
	if du.T < 0 || do.T < 0 {
		// A span must not straddle a power failure; marks are only valid
		// within one attempt.
		panic("kernel: ledger span crossed an attempt boundary")
	}
	l.committed[stats.App].Add(du)
	l.committed[stats.Overhead].Add(do)
	l.pending[0] = m.useful
	l.pending[1] = m.overhead
}

// CommitAttempt commits everything pending: called when a task reaches its
// transition.
func (l *Ledger) CommitAttempt() {
	l.committed[stats.App].Add(l.pending[0])
	l.committed[stats.Overhead].Add(l.pending[1])
	l.pending[0], l.pending[1] = stats.Totals{}, stats.Totals{}
}

// FailAttempt moves everything pending into Wasted: called when a power
// failure interrupts an attempt.
func (l *Ledger) FailAttempt() {
	l.committed[stats.Wasted].Add(l.pending[0])
	l.committed[stats.Wasted].Add(l.pending[1])
	l.pending[0], l.pending[1] = stats.Totals{}, stats.Totals{}
}

// TotalCommitted sums the three committed buckets. With nothing pending
// it equals the clock's on-time exactly — the accounting invariant the
// failure-point checker verifies on every replay.
func (l *Ledger) TotalCommitted() stats.Totals {
	var t stats.Totals
	for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
		t.Add(l.committed[b])
	}
	return t
}

// Committed returns the committed totals for bucket b.
func (l *Ledger) Committed(b stats.Bucket) stats.Totals { return l.committed[b] }

// Pending returns the (useful, overhead) work charged in the current
// attempt that has not committed yet.
func (l *Ledger) Pending() (useful, overhead stats.Totals) {
	return l.pending[0], l.pending[1]
}

// Export copies the committed buckets into a run record.
func (l *Ledger) Export(r *stats.Run) {
	for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
		r.Work[b] = l.committed[b]
	}
}

// Parts returns the ledger's full state — committed buckets plus the
// pending attempt pools — for serialization layers.
func (l *Ledger) Parts() (committed [stats.NumBuckets]stats.Totals, pending [2]stats.Totals) {
	return l.committed, l.pending
}

// MakeLedger reassembles a Ledger from its Parts.
func MakeLedger(committed [stats.NumBuckets]stats.Totals, pending [2]stats.Totals) Ledger {
	return Ledger{committed: committed, pending: pending}
}
