package kernel

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"easeio/internal/power"
	"easeio/internal/task"
)

// chromeDoc mirrors the exporter's envelope for structural validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceExport(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(8000)
		e.Done()
	})
	dev := NewDevice(power.NewSchedule(3*time.Millisecond), 1)
	buf := &TraceBuffer{}
	dev.Tracer = buf
	if err := RunApp(dev, &testRT{}, a); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := ExportChromeTrace(buf, &sb); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	var taskSpans, powerSpans, aborts, commits int
	prevTs := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("span %q has no or negative duration", ev.Name)
			}
			switch ev.Tid {
			case trackTasks:
				taskSpans++
				switch ev.Args["outcome"] {
				case "commit":
					commits++
				case "abort":
					aborts++
				default:
					t.Errorf("task span %q outcome = %v", ev.Name, ev.Args["outcome"])
				}
			case trackPower:
				powerSpans++
			}
		case "i":
			if ev.Args["detail"] == nil {
				t.Errorf("instant %q has no detail", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Ts < 0 {
			t.Errorf("event %q has negative ts", ev.Name)
		}
		_ = prevTs
	}
	// One schedule failure: the interrupted attempt aborts, the retry
	// commits, and the power track has on/off/on spans.
	if commits != 1 || aborts != 1 {
		t.Errorf("task spans: %d commits, %d aborts (want 1, 1); total %d", commits, aborts, taskSpans)
	}
	if powerSpans < 3 {
		t.Errorf("power spans = %d, want >= 3 (on, off, on)", powerSpans)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(nil, &sb); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			t.Errorf("empty trace exported non-metadata event %q", ev.Name)
		}
	}
}
