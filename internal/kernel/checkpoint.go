// Device checkpointing: a full mid-run snapshot of the hardware model,
// restorable into the same device or any device with the same blueprint
// attached. The failure-point checker uses checkpoints taken at
// charge-slice boundaries to replay only the post-failure suffix of a
// run instead of re-simulating from boot (DESIGN.md §13).

package kernel

import (
	"math/rand"

	"easeio/internal/lazyrand"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/timekeeper"
)

// countingSource wraps math/rand's default source and counts draws, so
// the peripheral randomness position can be checkpointed as (seed,
// draws) and re-established by rewinding to the same position. Every
// rand.Rand method maps to one or more Int63/Uint64 draws, each
// advancing the underlying generator by exactly one step, so the count
// pins the stream position exactly.
//
// Draws of the current seed are memoized, which makes a same-seed seek
// O(1) instead of paying math/rand's ~µs reseed per restore — the
// checker restores thousands of checkpoints into the same device, all
// on one seed, and the reseed would otherwise dominate suffix replay
// (it profiled at over half the checker's total time). The memo is
// bounded by the longest run's draw count and is dropped on a real
// reseed.
type countingSource struct {
	// src is created on the first unmemoized draw: many simulated runs
	// never sample peripheral randomness at all. src == nil implies the
	// memo is empty (entries only ever come from src), so a fresh
	// source is at the right position; once created, src always sits at
	// len(hist) draws past seed. The source is a lazyrand.Source —
	// bit-identical to rand.NewSource but with O(1) reseeding, so the
	// per-run Seed on the pooled path costs ten word-stores instead of
	// math/rand's ~µs eager state fill.
	src   rand.Source64
	seed  int64
	draws uint64   // position in the stream
	hist  []uint64 // memoized raw draws for seed
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{seed: seed}
}

// next returns the draw at the current position, from the memo when the
// position has been visited before.
func (c *countingSource) next() uint64 {
	if c.draws < uint64(len(c.hist)) {
		v := c.hist[c.draws]
		c.draws++
		return v
	}
	if c.src == nil {
		c.src = lazyrand.New(c.seed)
	}
	v := c.src.Uint64()
	c.hist = append(c.hist, v)
	c.draws++
	return v
}

// Int63 derives the signed draw exactly like math/rand's rngSource does
// (mask the top bit of the same raw uint64), so the stream is identical
// to calling src.Int63 directly.
func (c *countingSource) Int63() int64 { return int64(c.next() & (1<<63 - 1)) }

func (c *countingSource) Uint64() uint64 { return c.next() }

func (c *countingSource) Seed(seed int64) {
	if seed == c.seed {
		c.draws = 0 // rewind within the memoized stream
		return
	}
	c.seed, c.draws, c.hist = seed, 0, c.hist[:0]
	if c.src != nil {
		c.src.Seed(seed)
	}
}

// seek positions the source exactly n draws past the seed.
func (c *countingSource) seek(seed int64, n uint64) {
	c.Seed(seed)
	if uint64(len(c.hist)) < n && c.src == nil {
		c.src = lazyrand.New(c.seed)
	}
	for uint64(len(c.hist)) < n {
		c.hist = append(c.hist, c.src.Uint64())
	}
	c.draws = n
}

// Checkpoint is a full copy of a device's mid-run state: all memory
// banks (used prefixes), the clock, the work ledger, the run statistics,
// the peripheral randomness position, and — when the supply supports it
// — the supply's mutable state. Observation-only state (Tracer, Cuts)
// is deliberately excluded: sinks describe who is watching a device,
// not what the device is, and restoring one device's observers into
// another would cross-wire recordings.
//
// A checkpoint is immutable after Snapshot and safe to restore any
// number of times, into the snapshotted device or into a different
// device with the same blueprint attached (same allocation layout —
// mem.Memory.RestoreAll verifies this).
type Checkpoint struct {
	mem        *mem.DeviceSnapshot
	clock      timekeeper.State
	ledger     Ledger
	run        *stats.Run
	randSeed   int64
	randDraws  uint64
	supplyName string
	supply     power.SupplyState
}

// Snapshot captures the device's full current state. Call it only at
// rest points — between charge slices (e.g. from a CutSink) or outside
// a run — never from inside a memory or supply operation.
func (d *Device) Snapshot() *Checkpoint { return d.SnapshotInto(nil) }

// SnapshotInto is Snapshot reusing cp's buffers when cp is non-nil — the
// recycling path for callers that take and discard checkpoints in bulk
// (one per candidate failure point in the checker). The reused cp must
// no longer be needed; its previous contents are overwritten.
func (d *Device) SnapshotInto(cp *Checkpoint) *Checkpoint {
	if cp == nil {
		cp = &Checkpoint{}
	}
	cp.mem = d.Mem.SnapshotAllInto(cp.mem)
	cp.clock = d.Clock.State()
	cp.ledger = *d.Ledger
	cp.run = d.Run.CloneInto(cp.run)
	cp.randSeed = d.randSrc.seed
	cp.randDraws = d.randSrc.draws
	if s, ok := d.Supply.(power.Snapshottable); ok {
		cp.supplyName = d.Supply.Name()
		// The Into variant reuses the previous state's box when it came
		// from the same supply type, keeping recycled snapshots free of
		// the per-call interface-boxing allocation.
		cp.supply = s.SnapshotStateInto(cp.supply)
	} else {
		cp.supplyName, cp.supply = "", nil
	}
	return cp
}

// Restore rewinds the device to the checkpointed state. The supply's
// state is restored only when the device currently carries the same
// supply (matched by Name) the checkpoint captured; otherwise the
// current supply is left untouched for the caller to configure — this
// is how the checker restores continuous-power checkpoints into
// schedule-driven replay devices. Tracer and Cuts are never touched.
func (d *Device) Restore(cp *Checkpoint) {
	d.Mem.RestoreAll(cp.mem)
	d.Clock.Restore(cp.clock)
	*d.Ledger = cp.ledger
	d.Run = cp.run.CloneInto(d.Run)
	d.randSrc.seek(cp.randSeed, cp.randDraws)
	if s, ok := d.Supply.(power.Snapshottable); ok && cp.supply != nil && d.Supply.Name() == cp.supplyName {
		s.RestoreState(cp.supply)
	}
}
