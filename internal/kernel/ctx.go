// Ctx is the execution context handed to task bodies. It implements
// task.Exec by charging costs against the device and delegating
// consistency-sensitive operations to the runtime's hooks.

package kernel

import (
	"math"
	"math/rand"
	"time"

	"easeio/internal/lea"
	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
	"easeio/internal/units"
)

// chargeSlice bounds a single charge step so that power failures land with
// fine granularity inside long operations (50 µs = 50 cycles at 1 MHz).
const chargeSlice = 50 * time.Microsecond

// Ctx carries one attempt's execution state.
type Ctx struct {
	Dev *Device
	RT  Hooks

	// transitioned is set by Next/Done; the engine uses it to detect task
	// bodies that fall off the end without transitioning.
	transitioned bool

	// wastedDepth > 0 routes charges straight to the Wasted bucket (used
	// while re-executing already-completed I/O).
	wastedDepth int

	// fresh collects the freshness-bounded I/O sites the current task
	// attempt consumed (executed or skipped — a skip still hands the task
	// the privatized value). The engine checks their sample ages when the
	// task commits and clears the list; aborted attempts clear it on the
	// next BeginTask.
	fresh []*task.IOSite

	// compiled is the program's per-task kernel table when the engine
	// runs compiled dispatch (nil entries and nil table fall back to the
	// interpreted Body; see compiled.go), and bulk the runtime's fused
	// load-run extension if it has one. Both are set by initCompiled
	// after the per-run context reset.
	compiled []*task.Kernel
	bulk     BulkLoader
	// kregs is the compiled executor's register file (see runKernel); it
	// lives here so a task attempt costs no allocation.
	kregs [task.NumRegs]uint16
}

// PushWasted enters wasted-charging mode (see Ledger.ChargeWasted).
func (c *Ctx) PushWasted() { c.wastedDepth++ }

// PopWasted leaves wasted-charging mode.
func (c *Ctx) PopWasted() {
	if c.wastedDepth == 0 {
		panic("kernel: unbalanced PopWasted")
	}
	c.wastedDepth--
}

var _ task.Exec = (*Ctx)(nil)

// Charge advances time and drains energy, splitting long operations into
// slices and panicking with the power-failure sentinel the moment the
// supply gives out. State changes paid for by a charge must be applied
// *after* Charge returns.
func (c *Ctx) Charge(dt time.Duration, e units.Energy, overhead bool) {
	d := c.Dev
	if dt > 0 && dt <= chargeSlice {
		// Single-slice fast path: the vast majority of charges (word
		// accesses, flag checks, DMA words) fit one slice, where the
		// pro-rated energy is just e.
		c.chargeStep(d, dt, e, overhead)
		return
	}
	// Bulk fast path for multi-slice charges: when no cut sink observes
	// slice boundaries and the supply's next failure point is a known
	// constant strictly beyond this charge, the whole span can be booked
	// in one add. The pro-rating loop's slice sums are exact (they sum to
	// precisely dt and e), and timer/schedule supply steps are pure
	// on-time comparisons, so clock, ledger and failure behavior land
	// byte-identical to the sliced loop.
	if dt > chargeSlice && d.Cuts == nil {
		if head, known := c.failureHead(); known && dt < head {
			c.BulkCharge(dt, e, overhead)
			return
		}
	}
	for dt > 0 {
		step := dt
		if step > chargeSlice {
			step = chargeSlice
		}
		se := units.Energy(int64(e) * int64(step) / int64(dt))
		e -= se
		dt -= step
		c.chargeStep(d, step, se, overhead)
	}
}

// chargeStep applies one slice: advance the clock, book the work, step the
// supply, and unwind if the supply gives out.
func (c *Ctx) chargeStep(d *Device, step time.Duration, se units.Energy, overhead bool) {
	d.Clock.Run(step)
	if c.wastedDepth > 0 {
		d.Ledger.ChargeWasted(step, se)
	} else {
		d.Ledger.Charge(overhead, step, se)
	}
	if d.Cuts != nil {
		d.Cuts.NoteCut(d.Clock.OnTime())
	}
	// Devirtualize the per-slice supply step for the two supplies every
	// sweep runs under: Timer.Step is a single duration comparison and
	// Continuous never fails, so the common cases inline instead of
	// paying an interface call on every charged word.
	var failed bool
	switch s := d.Supply.(type) {
	case *power.Timer:
		failed = s.Step(d.Clock.Now(), d.Clock.OnTime(), step, se)
	case power.Continuous:
		// never fails
	default:
		failed = d.Supply.Step(d.Clock.Now(), d.Clock.OnTime(), step, se)
	}
	if failed {
		panic(powerFailure{})
	}
}

// failureHead returns the on-time distance to the supply's next failure
// point when that point is a known constant: continuous power never
// fails, and timer/schedule supplies fire at a fixed on-time between
// recharges regardless of drawn energy. known is false for supplies
// whose failure point depends on consumption (harvested), which must be
// stepped slice by slice.
func (c *Ctx) failureHead() (head time.Duration, known bool) {
	switch s := c.Dev.Supply.(type) {
	case power.Continuous:
		return time.Duration(math.MaxInt64), true
	case *power.Timer:
		return s.FireAt() - c.Dev.Clock.OnTime(), true
	case *power.Schedule:
		return s.FireAt() - c.Dev.Clock.OnTime(), true
	}
	return 0, false
}

// BulkFree reports how many of n identical slices of cost wdt each can
// be charged in one batch: free slices all complete strictly before the
// supply's next failure point. ok is false when bulk charging is not
// permitted at all — a cut sink observes slice boundaries, the failure
// point is unknown, or a slice exceeds the charge-slice bound — in which
// case the caller must take the per-slice path. ok with free < n means
// slice free+1 reaches the failure point: charge the free prefix in
// bulk, then finish per-slice so the failure lands on the exact word the
// sliced loop would have failed on.
func (c *Ctx) BulkFree(n int, wdt time.Duration) (free int, ok bool) {
	if n <= 0 || wdt <= 0 || wdt > chargeSlice || c.Dev.Cuts != nil {
		return 0, false
	}
	head, known := c.failureHead()
	if !known {
		return 0, false
	}
	if head <= 0 {
		return 0, true
	}
	free = n
	if f := (head - 1) / wdt; f < time.Duration(n) {
		free = int(f)
	}
	return free, true
}

// BulkCharge advances the clock and books (dt, e) in one ledger add,
// without stepping the supply or noting cuts. Callers must have
// established — via failureHead or BulkFree — that no failure point lies
// inside the span and no cut sink is attached; under those conditions
// the result is byte-identical to the equivalent chargeStep sequence.
func (c *Ctx) BulkCharge(dt time.Duration, e units.Energy, overhead bool) {
	d := c.Dev
	d.Clock.Run(dt)
	switch {
	case c.wastedDepth > 0:
		d.Ledger.committed[stats.Wasted].Add(stats.Totals{T: dt, E: e})
	case overhead:
		d.Ledger.pending[1].Add(stats.Totals{T: dt, E: e})
	default:
		d.Ledger.pending[0].Add(stats.Totals{T: dt, E: e})
	}
}

// ChargeCycles charges n CPU cycles of useful work.
func (c *Ctx) ChargeCycles(n int64) {
	c.Charge(mcu.Cycles(n), mcu.CyclesEnergy(n), false)
}

// ChargeOverheadCycles charges n CPU cycles of runtime bookkeeping.
func (c *Ctx) ChargeOverheadCycles(n int64) {
	c.Charge(mcu.Cycles(n), mcu.CyclesEnergy(n), true)
}

// ChargeMemAccess charges one 16-bit access to the given bank.
func (c *Ctx) ChargeMemAccess(b mem.Bank, write, overhead bool) {
	var cyc int64
	var e units.Energy
	switch {
	case b == mem.FRAM && write:
		cyc, e = mcu.FRAMWriteCycles, mcu.FRAMWriteEnergy
	case b == mem.FRAM:
		cyc, e = mcu.FRAMReadCycles, mcu.FRAMReadEnergy
	default:
		cyc, e = mcu.SRAMAccessCycles, mcu.SRAMAccessEnergy
	}
	c.Charge(mcu.Cycles(cyc), e, overhead)
}

// --- task.Exec: computation and memory ---

// Compute implements task.Exec.
func (c *Ctx) Compute(n int64) { c.RT.Compute(c, n) }

// Load implements task.Exec.
func (c *Ctx) Load(v *task.NVVar) uint16 { return c.RT.Load(c, v, 0) }

// Store implements task.Exec.
func (c *Ctx) Store(v *task.NVVar, val uint16) { c.RT.Store(c, v, 0, val) }

// LoadAt implements task.Exec.
func (c *Ctx) LoadAt(v *task.NVVar, i int) uint16 { return c.RT.Load(c, v, i) }

// StoreAt implements task.Exec.
func (c *Ctx) StoreAt(v *task.NVVar, i int, val uint16) { c.RT.Store(c, v, i, val) }

// --- task.Exec: I/O ---

// CallIO implements task.Exec.
func (c *Ctx) CallIO(s *task.IOSite) uint16 {
	c.noteFresh(s)
	return c.RT.CallIO(c, s, 0)
}

// CallIOAt implements task.Exec.
func (c *Ctx) CallIOAt(s *task.IOSite, idx int) uint16 {
	c.noteFresh(s)
	return c.RT.CallIO(c, s, idx)
}

// noteFresh books a freshness-bounded site as consumed by the current
// task attempt (see Ctx.fresh). Consecutive duplicates — loop sites —
// collapse to one entry so a commit charges each site once.
func (c *Ctx) noteFresh(s *task.IOSite) {
	if s.Freshness <= 0 {
		return
	}
	if n := len(c.fresh); n > 0 && c.fresh[n-1] == s {
		return
	}
	c.fresh = append(c.fresh, s)
}

// IOBlock implements task.Exec.
func (c *Ctx) IOBlock(b *task.IOBlock, body func()) { c.RT.IOBlock(c, b, body) }

// DMACopy implements task.Exec.
func (c *Ctx) DMACopy(d *task.DMASite, src, dst task.Loc, words int) {
	c.RT.DMACopy(c, d, src, dst, words)
}

// ResolveLoc turns a blueprint location into a concrete memory address,
// resolving variables to their master copies (the addresses the DMA
// controller sees).
func (c *Ctx) ResolveLoc(l task.Loc) mem.Addr {
	if l.Var != nil {
		return c.RT.AddrOf(l.Var).Add(l.Off)
	}
	return mem.Addr{Bank: mem.Bank(l.RawBank), Word: l.RawWord}
}

// RawDMA performs the mechanical DMA transfer: setup charge, then one
// charge + one word moved at a time, so a power failure cuts the copy
// mid-transfer with word granularity. It bypasses the runtime's variable
// interposition entirely — exactly like hardware DMA bypasses the CPU.
func (c *Ctx) RawDMA(src, dst mem.Addr, words int, overhead bool) {
	c.Charge(mcu.Cycles(mcu.DMASetupCycles), mcu.CyclesEnergy(mcu.DMASetupCycles), overhead)
	if words <= 0 {
		return
	}
	d := c.Dev
	// A DMA word is 2 cycles — far below one charge slice — so the word
	// loop charges via chargeStep directly, which is exactly what Charge's
	// single-slice fast path would do minus the per-word re-dispatch.
	wdt, we := mcu.Cycles(mcu.DMAWordCycles), mcu.DMAWordEnergy
	if wdt > chargeSlice {
		panic("kernel: DMA word cost exceeds one charge slice")
	}
	// The window bounds-checks the whole transfer up front and makes the
	// per-word move inlinable; a power failure mid-loop still leaves
	// exactly the charged prefix copied and counted.
	w := d.Mem.CopyWindowFor(src, dst, words)

	// Bulk fast path: when nothing observes intermediate slice states (no
	// cut sink) and the supply's next failure point is a known constant
	// (continuous, timer, schedule — all pure on-time comparisons), every
	// word that provably completes before that point can be charged and
	// moved in one batch. Sums of identical integer charges are exact, so
	// the clock, ledger, counters and memory land byte-identical to the
	// per-word loop, including a failure cutting the copy mid-transfer.
	if d.Cuts == nil && w.Bulkable() {
		fireAt, known := time.Duration(math.MaxInt64), false
		switch s := d.Supply.(type) {
		case power.Continuous:
			known = true
		case *power.Timer:
			fireAt, known = s.FireAt(), true
		case *power.Schedule:
			fireAt, known = s.FireAt(), true
		}
		if known {
			var pend *stats.Totals
			switch {
			case c.wastedDepth > 0:
				pend = &d.Ledger.committed[stats.Wasted]
			case overhead:
				pend = &d.Ledger.pending[1]
			default:
				pend = &d.Ledger.pending[0]
			}
			free := 0 // words whose slices end strictly before the failure
			if head := fireAt - d.Clock.OnTime(); head > 0 {
				free = words
				if f := (head - 1) / wdt; f < time.Duration(words) {
					free = int(f)
				}
			}
			if free > 0 {
				dt := time.Duration(free) * wdt
				d.Clock.Run(dt)
				pend.Add(stats.Totals{T: dt, E: units.Energy(free) * we})
				w.MoveN(0, free)
				if free == words {
					return
				}
			}
			// The next word's slice reaches the firing point: charge it
			// and fail before the move, exactly as the per-word loop would.
			d.Clock.Run(wdt)
			pend.Add(stats.Totals{T: wdt, E: we})
			panic(powerFailure{})
		}
	}
	for i := 0; i < words; i++ {
		c.chargeStep(d, wdt, we, overhead)
		w.Move(i)
	}
}

// --- task.Exec: LEA ---

func (c *Ctx) chargeLEA(macs int64) {
	c.Charge(mcu.Cycles(mcu.LEASetupCycles+macs*mcu.LEAMACCycles),
		mcu.CyclesEnergy(mcu.LEASetupCycles)+units.Energy(macs)*mcu.LEAMACEnergy, false)
}

// LEAFir implements task.Exec.
func (c *Ctx) LEAFir(inOff, coefOff, outOff, inLen, taps int) {
	c.chargeLEA(int64(inLen-taps+1) * int64(taps))
	lea.Fir(c.Dev.Mem, inOff, coefOff, outOff, inLen, taps)
}

// LEARelu implements task.Exec.
func (c *Ctx) LEARelu(off, n int) {
	c.chargeLEA(int64(n))
	lea.Relu(c.Dev.Mem, off, n)
}

// LEADot implements task.Exec.
func (c *Ctx) LEADot(aOff, bOff, n int) int32 {
	c.chargeLEA(int64(n))
	return lea.Dot(c.Dev.Mem, aOff, bOff, n)
}

// LEAMacs implements task.Exec.
func (c *Ctx) LEAMacs(n int64) { c.chargeLEA(n) }

// ReadLEA implements task.Exec.
func (c *Ctx) ReadLEA(off int) uint16 {
	c.ChargeMemAccess(mem.LEARAM, false, false)
	return c.Dev.Mem.Read(mem.Addr{Bank: mem.LEARAM, Word: off})
}

// WriteLEA implements task.Exec.
func (c *Ctx) WriteLEA(off int, val uint16) {
	c.ChargeMemAccess(mem.LEARAM, true, false)
	c.Dev.Mem.Write(mem.Addr{Bank: mem.LEARAM, Word: off}, val)
}

// --- task.Exec: environment ---

// Op implements task.Exec: a peripheral operation's latency and energy.
func (c *Ctx) Op(dt time.Duration, e units.Energy) { c.Charge(dt, e, false) }

// Now implements task.Exec.
func (c *Ctx) Now() time.Duration { return c.Dev.Clock.Now() }

// Rand implements task.Exec.
func (c *Ctx) Rand() *rand.Rand { return c.Dev.Rand }

// --- task.Exec: control flow ---

// Next implements task.Exec.
func (c *Ctx) Next(t *task.Task) {
	c.transitioned = true
	c.RT.Transition(c, t)
}

// Done implements task.Exec.
func (c *Ctx) Done() {
	c.transitioned = true
	c.RT.Transition(c, nil)
}
