// Chrome trace_event exporter: renders a recorded timeline as the JSON
// object format consumed by chrome://tracing and Perfetto
// (https://ui.perfetto.dev). The export reconstructs intervals from the
// event stream — power on/off spans, task attempts with their outcome —
// and emits the point decisions (I/O, DMA, blocks, regions) as instant
// events, so a run's whole execution reads as a flame-chart.
//
// The output is deterministic for a deterministic event stream: events
// are emitted in timeline order, one JSON object per line, with no map
// iteration feeding the order — golden-file tests pin it byte-for-byte.

package kernel

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// The exporter's thread (track) layout. One simulated device is one
// process; each aspect of the execution gets its own named track.
const (
	trackPower   = 1
	trackTasks   = 2
	trackIO      = 3
	trackDMA     = 4
	trackRegions = 5
)

// chromeEvent is one trace_event entry. Field order is the JSON key
// order, which golden files pin.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usOf converts a simulated wall-clock offset to trace microseconds.
func usOf(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// taskOf extracts the task name from a task event's detail
// ("name (attempt N)" or just "name").
func taskOf(detail string) string {
	if i := strings.IndexByte(detail, ' '); i > 0 {
		return detail[:i]
	}
	return detail
}

// WriteChromeTrace renders the events as Chrome trace_event JSON. The
// stream must be a single run's timeline in emission order (as recorded
// by a TraceBuffer).
func WriteChromeTrace(events []TraceEvent, w io.Writer) error {
	var out []chromeEvent
	meta := func(name string, tid int, arg string) {
		out = append(out, chromeEvent{
			Name: name, Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": arg},
		})
	}
	meta("process_name", 0, "easeio simulated device")
	meta("thread_name", trackPower, "power")
	meta("thread_name", trackTasks, "tasks")
	meta("thread_name", trackIO, "io")
	meta("thread_name", trackDMA, "dma")
	meta("thread_name", trackRegions, "regions")

	end := time.Duration(0)
	if len(events) > 0 {
		end = events[len(events)-1].Wall
	}

	span := func(name string, tid int, from, to time.Duration, args map[string]any) {
		dur := usOf(to - from)
		out = append(out, chromeEvent{
			Name: name, Ph: "X", Ts: usOf(from), Dur: &dur,
			Pid: 1, Tid: tid, Args: args,
		})
	}
	instant := func(e TraceEvent, tid int) {
		out = append(out, chromeEvent{
			Name: e.Kind.String(), Cat: e.Kind.String(), Ph: "i",
			Ts: usOf(e.Wall), Pid: 1, Tid: tid, S: "t",
			Args: map[string]any{"boot": e.Boot, "detail": e.Detail},
		})
	}

	// Interval reconstruction state: the power span open since powerFrom,
	// and the task attempt open since taskFrom.
	powerOn := false
	var powerFrom time.Duration
	var openTask string
	var taskFrom time.Duration
	var taskBoot int
	closeTask := func(to time.Duration, outcome string) {
		if openTask == "" {
			return
		}
		span(openTask, trackTasks, taskFrom, to,
			map[string]any{"boot": taskBoot, "outcome": outcome})
		openTask = ""
	}

	for _, e := range events {
		switch e.Kind {
		case EvBoot:
			if !powerOn {
				powerOn, powerFrom = true, e.Wall
			}
			instant(e, trackPower)
		case EvPowerFailure:
			if powerOn {
				span("power on", trackPower, powerFrom, e.Wall, nil)
				powerOn = false
			}
			powerFrom = e.Wall
			closeTask(e.Wall, "abort")
			instant(e, trackPower)
		case EvRecharge:
			// The recharge event carries the off duration; the off span
			// runs from the failure to the next boot, which the clock has
			// already advanced past.
			span("power off", trackPower, powerFrom, e.Wall,
				map[string]any{"detail": e.Detail})
			powerFrom = e.Wall
			powerOn = true
		case EvTaskBegin:
			closeTask(e.Wall, "abort")
			openTask, taskFrom, taskBoot = taskOf(e.Detail), e.Wall, e.Boot
		case EvTaskCommit:
			closeTask(e.Wall, "commit")
		case EvTaskAbort:
			closeTask(e.Wall, "abort")
		case EvIOExec, EvIOSkip, EvBlockSkip, EvBlockViolation:
			instant(e, trackIO)
		case EvDMAClass, EvDMAExec, EvDMASkip:
			instant(e, trackDMA)
		case EvRegionPrivatize, EvRegionRestore:
			instant(e, trackRegions)
		default:
			instant(e, trackPower)
		}
	}
	closeTask(end, "abort")
	if powerOn && end > powerFrom {
		span("power on", trackPower, powerFrom, end, nil)
	}

	// One event per line keeps the output diffable and the golden file
	// reviewable; encoding/json gives deterministic key order (struct
	// order; map args sort their keys).
	if _, err := fmt.Fprintf(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(out)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", b, sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "]}\n")
	return err
}

// ExportChromeTrace renders a trace buffer's timeline (see
// WriteChromeTrace).
func ExportChromeTrace(buf *TraceBuffer, w io.Writer) error {
	return WriteChromeTrace(buf.Events, w)
}
