package kernel

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/energy"
	"easeio/internal/power"
	"easeio/internal/task"
	"easeio/internal/units"
)

func TestRenderGantt(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(8000)
		e.Done()
	})
	dev := NewDevice(power.NewSchedule(3*time.Millisecond), 1)
	buf := &TraceBuffer{}
	dev.Tracer = buf
	if err := RunApp(dev, &testRT{}, a); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderGantt(buf, 80, &sb)
	out := sb.String()
	for _, want := range []string{"power", "taska", "X", "C", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// Degenerate inputs must not panic.
	var empty strings.Builder
	RenderGantt(&TraceBuffer{}, 80, &empty)
	if !strings.Contains(empty.String(), "no events") {
		t.Error("empty buffer rendering")
	}
	RenderGantt(buf, 1, &strings.Builder{}) // width clamp
}

func TestStuckHarvestedRun(t *testing.T) {
	// A harvester below leakage power: the first recharge never reaches
	// the boot threshold and the run is abandoned as Stuck.
	a := simpleApp(func(e task.Exec) {
		e.Compute(50_000)
		e.Done()
	})
	h := power.NewHarvested(energy.Constant{P: 1 * units.Microwatt})
	h.MaxOff = 50 * time.Millisecond
	h.Cap.C = 1000 * units.Nanofarad // tiny: drains mid-task
	h.StartAtVon = true
	dev := NewDevice(h, 1)
	if err := RunApp(dev, &testRT{}, a); err != nil {
		t.Fatal(err)
	}
	if !dev.Run.Stuck {
		t.Fatal("run should be stuck")
	}
	if dev.Run.Correct {
		t.Error("a stuck run must not report correct output")
	}
}
