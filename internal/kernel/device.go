// Package kernel is the execution engine of the simulator: it owns the
// device (memory, clock, energy supply), charges every operation's time
// and energy, injects power failures as non-local exits, and drives
// task-based runtimes through boot/attempt/commit cycles.
//
// The central invariant: costs are charged *before* the state change they
// pay for, and big operations are charged in slices. A power failure can
// therefore land between the energy being spent and the effect becoming
// durable — the window in which all of the paper's problems (wasted I/O,
// idempotence bugs, unsafe execution) live.
package kernel

import (
	"fmt"
	"math/rand"
	"time"

	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
	"easeio/internal/timekeeper"
)

// Device aggregates the hardware model for one simulated run.
type Device struct {
	Mem    *mem.Memory
	Clock  *timekeeper.Clock
	Supply power.Supply
	Ledger *Ledger
	// Rand drives the physical-value processes of peripherals. It is
	// measurement-world state: sampling it costs nothing.
	Rand *rand.Rand
	// Run accumulates the run's statistics.
	Run *stats.Run
	// Tracer, when non-nil, receives the execution timeline (see trace.go).
	Tracer Tracer
	// Cuts, when non-nil, receives every charge-slice boundary (see
	// CutSink). Like Tracer it is observation-only state and survives
	// Reset.
	Cuts CutSink
	// NoCompile forces the fully interpreted path even when the program
	// carries compiled kernels: every task runs its interpreted Body and
	// output checking uses the canonical per-word CheckOutput instead of
	// CheckFast — the differential tests' handle for pinning compiled
	// execution byte-identical to interpreted. Like Tracer and Cuts it is
	// configuration, not per-run state, and survives Reset.
	NoCompile bool

	// randSrc is the reseedable source behind Rand, kept so Reset can
	// rewind the peripheral randomness without reallocating it and so
	// Snapshot can record the stream position (see checkpoint.go).
	randSrc *countingSource

	// ctx is the engine's reusable execution context (see runLoop) and
	// reader/readerFunc the reusable CheckOutput scanner (see finish) —
	// per-run scratch kept on the device so steady-state pooled runs
	// allocate nothing. checker/checkerIface is the analogous reusable
	// CheckFast scanner (the interface value is memoized so rebinding it
	// per run does not box).
	ctx         Ctx
	reader      checkReader
	readerFunc  func(v *task.NVVar, i int) uint16
	checker     checkMem
	checkerFace task.CheckMem
}

// checkReader scans final memory for CheckOutput, memoizing a direct
// read view of each variable's master words (checkers read variables
// word by word, thousands of words per run). It lives on the Device so
// finish can rebind it per run without allocating a fresh closure.
type checkReader struct {
	dev   *Device
	rt    Hooks
	lastV *task.NVVar
	view  mem.ReadView
}

func (r *checkReader) read(v *task.NVVar, i int) uint16 {
	if v != r.lastV {
		r.lastV = v
		r.view = r.dev.Mem.View(r.rt.AddrOf(v), v.Words)
	}
	return r.view.At(i)
}

// checkMem implements task.CheckMem over a run's final memory for the
// CheckFast path: bulk range comparison plus the same memoized per-word
// reads checkReader uses. Reads go through the counting View like the
// CheckOutput scanner; Equal compares a whole range in one call
// (checking is outside the simulation's cost model, so the comparison
// itself is uncounted — like EqualRange's other harness uses).
type checkMem struct {
	dev   *Device
	rt    Hooks
	lastV *task.NVVar
	view  mem.ReadView
}

func (m *checkMem) Read(v *task.NVVar, i int) uint16 {
	if v != m.lastV {
		m.lastV = v
		m.view = m.dev.Mem.View(m.rt.AddrOf(v), v.Words)
	}
	return m.view.At(i)
}

func (m *checkMem) Equal(v *task.NVVar, off int, want []uint16) bool {
	return m.dev.Mem.EqualRange(m.rt.AddrOf(v).Add(off), want)
}

// NewDevice assembles a fresh device around the given supply, seeding both
// the supply and the peripheral randomness.
func NewDevice(supply power.Supply, seed int64) *Device {
	supply.Reset(seed)
	src := newCountingSource(seed ^ 0x5ea10)
	return &Device{
		Mem:     mem.New(),
		Clock:   timekeeper.New(),
		Supply:  supply,
		Ledger:  &Ledger{},
		Rand:    rand.New(src),
		Run:     &stats.Run{Seed: seed},
		randSrc: src,
	}
}

// Reset rewinds the device to the state NewDevice(supply, seed) would
// produce, reusing the existing memory, clock, ledger and randomness
// allocations. Memory contents are cleared but the allocator and
// allocation records survive, so a runtime attached to this device keeps
// its addresses valid: re-running an app only requires the runtime to
// rewrite its initial durable state (see Resetter).
func (d *Device) Reset(supply power.Supply, seed int64) {
	supply.Reset(seed)
	d.Supply = supply
	d.Mem.Reset()
	d.Clock.Reset()
	d.Ledger.Reset()
	// Reseeding the source puts Rand in exactly the state rand.New would:
	// Rand buffers nothing outside its Read method, which nothing uses.
	d.randSrc.Seed(seed ^ 0x5ea10)
	// Reset the run record in place: the previous run's record is
	// invalidated (Session.Run documents that the returned statistics are
	// only valid until the next reset; clone to retain).
	d.Run.ResetForRun(seed)
	if r, ok := d.Tracer.(interface{ Reset() }); ok && r != nil {
		r.Reset()
	}
}

// Resetter is the optional interface a runtime implements to support
// device reuse: Reset must return the attached runtime instance to the
// state it had right after Attach on a device whose memory has just been
// cleared by Device.Reset — i.e. rewrite every durable word the attach
// path wrote (variable initial values, instance counters, the task
// pointer) and clear all per-run volatile bookkeeping. Runtimes that do
// not implement it are re-attached to a fresh device for every run.
type Resetter interface {
	Hooks
	Reset(dev *Device) error
}

// Snapshotter is the optional interface a runtime implements to support
// device checkpointing, mirroring Resetter for the hook struct's
// volatile state. SnapshotState must capture exactly the volatile
// bookkeeping that survives reboots (execution counters, completion
// records, instance numbers — state a reboot does not clear); state that
// every boot rebuilds (the current task, privatization buffers, dirty
// maps) must instead be cleared by RestoreState, because a restored
// checkpoint is always resumed through the reboot path (see
// ResumeWithFailure). The returned state must be independent of the
// runtime instance: restoring it into a different instance attached to
// an equivalently laid-out device must be exact.
type Snapshotter interface {
	Hooks
	SnapshotState() any
	RestoreState(dev *Device, state any)
}

// SnapshotterInto is an optional extension of Snapshotter for callers
// that take checkpoints in bulk: SnapshotStateInto behaves like
// SnapshotState but may reuse the storage of prev — a state previously
// returned by this runtime type and no longer needed — instead of
// allocating. A nil (or foreign) prev allocates fresh.
type SnapshotterInto interface {
	Snapshotter
	SnapshotStateInto(prev any) any
}

// CutSink receives the on-time of every charge-slice boundary — exactly
// the points at which the supply is consulted and a power failure can
// land. A golden continuous-power pass with a recording sink therefore
// enumerates every distinct failure point of a run: the candidate set the
// failure-point model checker (internal/check) replays against. The sink
// is called from the hot charging path after the slice's time and energy
// have been charged but before the supply is stepped, so the device
// state it observes is byte-identical to the state a replay sees at the
// instant a failure fires at that boundary — which is what lets a sink
// take checkpoints (Device.Snapshot) that a suffix replay can restore.
// Implementations must be cheap and must not mutate the device.
type CutSink interface {
	NoteCut(onTime time.Duration)
}

// powerFailure is the panic sentinel that unwinds an interrupted attempt.
type powerFailure struct{}

// Hooks is the interface a task-based runtime implements. The kernel
// calls lifecycle hooks; task bodies reach the data hooks through Ctx.
type Hooks interface {
	// Name identifies the runtime ("Alpaca", "InK", "EaseIO").
	Name() string

	// Attach instantiates the app on the device: allocate master copies
	// of task-shared variables and runtime metadata. Called once per run
	// before execution starts.
	Attach(dev *Device, app *task.App) error

	// OnBoot runs the runtime's recovery path after (re)boot.
	OnBoot(c *Ctx)

	// CurrentTask returns the task to execute next, or nil when the app
	// has finished.
	CurrentTask() *task.Task

	// BeginTask runs the runtime's task-entry work (privatization).
	BeginTask(c *Ctx, t *task.Task)

	// Transition commits the current task and installs next (nil = app
	// done).
	Transition(c *Ctx, next *task.Task)

	// Compute charges n cycles of application CPU work; runtimes that
	// track fine-grained progress (JustDo logging) interpose here, the
	// task-based ones charge it straight through.
	Compute(c *Ctx, n int64)

	// Load and Store access word i of a task-shared variable through the
	// runtime's consistency machinery.
	Load(c *Ctx, v *task.NVVar, i int) uint16
	Store(c *Ctx, v *task.NVVar, i int, val uint16)

	// AddrOf resolves a variable to its master (committed) non-volatile
	// address — the address DMA transfers use, bypassing privatization.
	AddrOf(v *task.NVVar) mem.Addr

	// CallIO executes or skips the I/O site instance idx.
	CallIO(c *Ctx, s *task.IOSite, idx int) uint16

	// IOBlock wraps body in the block's atomic scope.
	IOBlock(c *Ctx, b *task.IOBlock, body func())

	// DMACopy performs the transfer with the runtime's safety machinery.
	DMACopy(c *Ctx, d *task.DMASite, src, dst task.Loc, words int)
}

// ReadVar reads word i of v directly from its master address, outside the
// simulation's cost model. Experiment harnesses use it to inspect final
// memory (the "logic analyzer" view).
func ReadVar(dev *Device, rt Hooks, v *task.NVVar, i int) uint16 {
	a := rt.AddrOf(v)
	return dev.Mem.Read(a.Add(i))
}

// String summarizes the device.
func (d *Device) String() string {
	return fmt.Sprintf("device{t=%v on=%v boots=%d}",
		d.Clock.Now(), d.Clock.OnTime(), d.Clock.Boots())
}
