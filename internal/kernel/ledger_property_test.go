package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
	"easeio/internal/units"
)

// TestLedgerConservationProperty: no work is ever created or destroyed —
// for any random sequence of charges, spans, commits and attempt
// failures, committed + pending totals exactly equal the sum of charges.
func TestLedgerConservationProperty(t *testing.T) {
	err := quick.Check(func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &Ledger{}
		var charged stats.Totals
		var marks []SpanMark
		for i := 0; i < int(nOps); i++ {
			switch rng.Intn(6) {
			case 0, 1: // charge useful or overhead
				tt := stats.Totals{
					T: time.Duration(rng.Intn(1000)) * time.Microsecond,
					E: units.Energy(rng.Intn(10000)),
				}
				l.Charge(rng.Intn(2) == 0, tt.T, tt.E)
				charged.Add(tt)
			case 2: // direct wasted
				tt := stats.Totals{
					T: time.Duration(rng.Intn(1000)) * time.Microsecond,
					E: units.Energy(rng.Intn(10000)),
				}
				l.ChargeWasted(tt.T, tt.E)
				charged.Add(tt)
			case 3: // open a span
				marks = append(marks, l.Mark())
			case 4: // commit the innermost span (LIFO, as the runtimes do)
				if n := len(marks); n > 0 {
					l.CommitSince(marks[n-1])
					marks = marks[:n-1]
				}
			case 5: // power failure: pending drains to Wasted, marks die
				l.FailAttempt()
				marks = marks[:0]
			}
		}
		var total stats.Totals
		for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
			total.Add(l.Committed(b))
		}
		u, o := l.Pending()
		total.Add(u)
		total.Add(o)
		return total == charged
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestEngineConservation: the same invariant end to end — a full run's
// committed bucket times must equal the clock's powered-on time exactly,
// across many failure schedules.
func TestEngineConservation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := simpleApp(func(e task.Exec) {
			e.Compute(9000)
			e.Done()
		})
		dev := NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
		if err := RunApp(dev, &testRT{}, a); err != nil {
			t.Fatal(err)
		}
		var sum time.Duration
		for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
			sum += dev.Run.Work[b].T
		}
		if sum != dev.Run.OnTime {
			t.Fatalf("seed %d: buckets %v != on-time %v", seed, sum, dev.Run.OnTime)
		}
	}
}
