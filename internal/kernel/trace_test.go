package kernel

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/power"
	"easeio/internal/task"
)

func TestTraceBufferRecordsLifecycle(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(8000)
		e.Done()
	})
	dev := NewDevice(power.NewSchedule(3*time.Millisecond), 1)
	buf := &TraceBuffer{}
	dev.Tracer = buf
	if err := RunApp(dev, &testRT{}, a); err != nil {
		t.Fatal(err)
	}
	if buf.Count("boot") != 2 {
		t.Errorf("boot events = %d, want 2", buf.Count("boot"))
	}
	if buf.Count("power-failure") != 1 {
		t.Errorf("power-failure events = %d, want 1", buf.Count("power-failure"))
	}
	if buf.Count("task-begin") < 2 || buf.Count("task-commit") != 1 {
		t.Errorf("task events: begin=%d commit=%d", buf.Count("task-begin"), buf.Count("task-commit"))
	}
	// Events are time-ordered and render non-empty lines.
	var prev time.Duration
	var sb strings.Builder
	buf.Dump(&sb)
	for _, e := range buf.Events {
		if e.Wall < prev {
			t.Fatalf("events out of order: %v after %v", e.Wall, prev)
		}
		prev = e.Wall
	}
	if !strings.Contains(sb.String(), "power-failure") {
		t.Error("dump missing failure event")
	}
}

func TestTraceCostsNothing(t *testing.T) {
	runOnce := func(traced bool) time.Duration {
		a := simpleApp(func(e task.Exec) {
			e.Compute(5000)
			e.Done()
		})
		dev := NewDevice(power.Continuous{}, 1)
		if traced {
			dev.Tracer = &TraceBuffer{}
		}
		if err := RunApp(dev, &testRT{}, a); err != nil {
			t.Fatal(err)
		}
		return dev.Clock.OnTime()
	}
	if runOnce(false) != runOnce(true) {
		t.Error("tracing changed simulated time")
	}
}
