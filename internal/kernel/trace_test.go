package kernel

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/power"
	"easeio/internal/task"
)

func TestTraceBufferRecordsLifecycle(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(8000)
		e.Done()
	})
	dev := NewDevice(power.NewSchedule(3*time.Millisecond), 1)
	buf := &TraceBuffer{}
	dev.Tracer = buf
	if err := RunApp(dev, &testRT{}, a); err != nil {
		t.Fatal(err)
	}
	if buf.Count(EvBoot) != 2 {
		t.Errorf("boot events = %d, want 2", buf.Count(EvBoot))
	}
	if buf.Count(EvPowerFailure) != 1 {
		t.Errorf("power-failure events = %d, want 1", buf.Count(EvPowerFailure))
	}
	if buf.Count(EvTaskBegin) < 2 || buf.Count(EvTaskCommit) != 1 {
		t.Errorf("task events: begin=%d commit=%d", buf.Count(EvTaskBegin), buf.Count(EvTaskCommit))
	}
	// The attempt the failure interrupted is closed by an abort event
	// before the failure itself is recorded.
	if buf.Count(EvTaskAbort) != 1 {
		t.Errorf("task-abort events = %d, want 1", buf.Count(EvTaskAbort))
	}
	// Events are time-ordered and render non-empty lines.
	var prev time.Duration
	var sb strings.Builder
	buf.Dump(&sb)
	for _, e := range buf.Events {
		if e.Wall < prev {
			t.Fatalf("events out of order: %v after %v", e.Wall, prev)
		}
		prev = e.Wall
	}
	if !strings.Contains(sb.String(), "power-failure") {
		t.Error("dump missing failure event")
	}
}

func TestTraceCostsNothing(t *testing.T) {
	runOnce := func(traced bool) time.Duration {
		a := simpleApp(func(e task.Exec) {
			e.Compute(5000)
			e.Done()
		})
		dev := NewDevice(power.Continuous{}, 1)
		if traced {
			dev.Tracer = &TraceBuffer{}
		}
		if err := RunApp(dev, &testRT{}, a); err != nil {
			t.Fatal(err)
		}
		return dev.Clock.OnTime()
	}
	if runOnce(false) != runOnce(true) {
		t.Error("tracing changed simulated time")
	}
}

// The overhead budget of DESIGN.md §12: with no tracer attached, a trace
// point is one nil check — no Sprintf, no allocation.
func BenchmarkTraceOff(b *testing.B) {
	dev := NewDevice(power.Continuous{}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Trace(EvIOExec, "%s[%d]", "site", i)
	}
}

// BenchmarkTraceOn is the comparison point: the full cost of formatting
// and buffering an event when tracing is enabled.
func BenchmarkTraceOn(b *testing.B) {
	dev := NewDevice(power.Continuous{}, 1)
	buf := &TraceBuffer{}
	dev.Tracer = buf
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(buf.Events) > 1<<16 {
			buf.Reset()
		}
		dev.Trace(EvIOExec, "%s[%d]", "site", i)
	}
}

// BenchmarkRunTraced/off vs /on: end-to-end cost of tracing a whole run.
func BenchmarkRunTraced(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := simpleApp(func(e task.Exec) {
					e.Compute(5000)
					e.Done()
				})
				dev := NewDevice(power.Continuous{}, 1)
				if traced {
					dev.Tracer = &TraceBuffer{}
				}
				b.StartTimer()
				if err := RunApp(dev, &testRT{}, a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
