// Lockstep batch execution: K pooled sessions of the same blueprint are
// stepped round-robin, one engine step (failure handling, boot, or one
// task attempt) per live device per round, through the one shared frozen
// program and compiled kernel table. The devices are fully independent —
// each has its own memory, clock, supply, randomness and ledger, and
// nothing in a step reads another slot's state — so every run is
// byte-identical to the same seed run sequentially through Session.Run;
// what lockstep buys is locality: all K devices execute the same task's
// kernel back to back, so the shared instruction stream and program
// tables stay hot while only the small per-device state rotates through
// cache. The per-slot scheduler below mirrors runLoop/bootAndRun
// (engine.go) step for step; any change there must land here too.

package kernel

import (
	"fmt"

	"easeio/internal/mcu"
	"easeio/internal/power"
	"easeio/internal/stats"
)

// BatchSession drives up to K sessions of the same app in lockstep. The
// sessions must share the blueprint (one analyzed app per session
// instance is fine — peripheral models carry per-device state — but all
// must be builds of the same program) and are reused across Run calls
// exactly like a pooled Session: steady-state batches allocate nothing.
type BatchSession struct {
	slots []batchSlot
	runs  []*stats.Run
	errs  []error
}

// batchSlot is one device's scheduler state between lockstep rounds.
type batchSlot struct {
	sess *Session
	// failed records a pending power failure to handle, booted that the
	// boot path has run since the last failure, finished that the run is
	// complete (result in run/err).
	failed   bool
	booted   bool
	finished bool
	err      error
}

// NewBatchSession creates a lockstep batch over the given sessions. The
// batch owns the sessions' run scheduling; using a session directly
// between batch runs is fine (both paths leave the device pooled).
func NewBatchSession(sessions ...*Session) *BatchSession {
	b := &BatchSession{
		slots: make([]batchSlot, len(sessions)),
		runs:  make([]*stats.Run, len(sessions)),
		errs:  make([]error, len(sessions)),
	}
	for i, s := range sessions {
		b.slots[i].sess = s
	}
	return b
}

// Size returns the batch width K.
func (b *BatchSession) Size() int { return len(b.slots) }

// Session returns slot i's session (for inspection, like Session.Device).
func (b *BatchSession) Session(i int) *Session { return b.slots[i].sess }

// Run executes one run per seed (len(seeds) ≤ K), advancing all devices
// in lockstep, and returns per-seed results: runs[i] is seed i's
// statistics (nil on error) and errs[i] its structural error. The
// returned slices and run records are reused by the next Run — read or
// clone before running again.
func (b *BatchSession) Run(seeds []int64) ([]*stats.Run, []error) {
	n := len(seeds)
	if n > len(b.slots) {
		panic(fmt.Sprintf("kernel: batch of %d seeds exceeds %d slots", n, len(b.slots)))
	}
	live := 0
	for i := 0; i < n; i++ {
		sl := &b.slots[i]
		sl.failed, sl.booted, sl.finished, sl.err = false, false, false, nil
		s := sl.sess
		if err := s.prepare(seeds[i]); err != nil {
			sl.err = err
			sl.finished = true
			continue
		}
		dev := s.dev
		dev.Run.App = s.app.Name
		dev.Run.Runtime = s.rt.Name()
		dev.ctx = Ctx{Dev: dev, RT: s.rt}
		dev.ctx.initCompiled(s.app)
		live++
	}
	for live > 0 {
		for i := 0; i < n; i++ {
			sl := &b.slots[i]
			if sl.finished {
				continue
			}
			b.advance(sl)
			if sl.finished {
				live--
			}
		}
	}
	b.runs = b.runs[:0]
	b.errs = b.errs[:0]
	for i := 0; i < n; i++ {
		sl := &b.slots[i]
		if sl.err != nil {
			// Mirror Session.Run's error contract: the device is
			// discarded so the next use re-attaches from clean state.
			sl.sess.dev = nil
			b.runs = append(b.runs, nil)
			b.errs = append(b.errs, sl.err)
			continue
		}
		b.runs = append(b.runs, sl.sess.dev.Run)
		b.errs = append(b.errs, nil)
	}
	return b.runs, b.errs
}

// advance performs one engine step for a slot: pending-failure handling,
// the boot path, or a single task attempt — the same units, in the same
// per-device order, as runLoop/bootAndRun.
func (b *BatchSession) advance(sl *batchSlot) {
	s := sl.sess
	dev := s.dev
	if sl.failed {
		// The failure block of runLoop.
		dev.Run.PowerFailures++
		dev.Ledger.FailAttempt()
		dev.Mem.PowerFailure()
		if dev.TraceOn() {
			dev.Trace(EvPowerFailure, "#%d", dev.Run.PowerFailures)
		}
		off := dev.Supply.Recharge(dev.Clock.Now())
		dev.Clock.Off(off)
		if dev.TraceOn() {
			dev.Trace(EvRecharge, "off for %v", off)
		}
		if h, ok := dev.Supply.(*power.Harvested); ok && h.Dead() {
			dev.Run.Stuck = true
			finish(dev, s.rt, s.app)
			sl.finished = true
			return
		}
		if dev.Clock.Boots() > maxBoots {
			sl.err = fmt.Errorf("kernel: %s/%s did not terminate within %d boots (non-termination bug)",
				s.app.Name, s.rt.Name(), maxBoots)
			sl.finished = true
			return
		}
		sl.failed = false
		sl.booted = false
		return
	}
	if !sl.booted {
		if bootSlot(&dev.ctx) {
			sl.failed = true
			return
		}
		sl.booted = true
		return
	}
	done, failed, err := stepTask(&dev.ctx)
	switch {
	case err != nil:
		sl.err = err
		sl.finished = true
	case failed:
		sl.failed = true
	case done:
		finish(dev, s.rt, s.app)
		sl.finished = true
	}
}

// bootSlot charges the boot path and runs the runtime's recovery hook —
// the pre-task-loop half of bootAndRun. It reports whether a power
// failure unwound the boot.
func bootSlot(ctx *Ctx) (failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(powerFailure); ok {
				failed = true
				return
			}
			panic(r)
		}
	}()
	ctx.wastedDepth = 0
	ctx.fresh = ctx.fresh[:0]
	ctx.Dev.Clock.Boot()
	if ctx.Dev.TraceOn() {
		ctx.Dev.Trace(EvBoot, "#%d", ctx.Dev.Clock.Boots())
	}
	ctx.ChargeOverheadCycles(mcu.BootCycles)
	ctx.RT.OnBoot(ctx)
	return false
}

// stepTask runs one task attempt — one iteration of bootAndRun's task
// loop, including the freshness-age check at commit. done reports app
// completion, failed a power failure unwinding the attempt.
func stepTask(ctx *Ctx) (done, failed bool, err error) {
	var inFlight string // name of the task in flight, for the abort event
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(powerFailure); ok {
				if inFlight != "" && ctx.Dev.TraceOn() {
					ctx.Dev.Trace(EvTaskAbort, "%s", inFlight)
				}
				failed = true
				return
			}
			panic(r)
		}
	}()
	t := ctx.RT.CurrentTask()
	if t == nil {
		return true, false, nil
	}
	ctx.Dev.Run.TaskAttempts++
	ctx.transitioned = false
	ctx.fresh = ctx.fresh[:0]
	if ctx.Dev.TraceOn() {
		ctx.Dev.Trace(EvTaskBegin, "%s (attempt %d)", t.Name, ctx.Dev.Run.TaskAttempts)
	}
	inFlight = t.Name
	ctx.RT.BeginTask(ctx, t)
	if k := ctx.kernelOf(t); k != nil {
		ctx.runKernel(k)
	} else {
		t.Body(ctx)
	}
	if !ctx.transitioned {
		return false, false, fmt.Errorf("kernel: task %q returned without Next/Done", t.Name)
	}
	inFlight = ""
	if len(ctx.fresh) > 0 {
		now := ctx.Dev.Clock.Now()
		for _, s := range ctx.fresh {
			if at := ctx.Dev.Run.SampleAt(s.ID); at >= 0 {
				if age := now - at; age > s.Freshness {
					ctx.Dev.Run.NoteStale(s.Name, age, s.Freshness, now)
				}
			}
		}
		ctx.fresh = ctx.fresh[:0]
	}
	ctx.Dev.Run.TaskCommits++
	if ctx.Dev.TraceOn() {
		ctx.Dev.Trace(EvTaskCommit, "%s", t.Name)
	}
	return false, false, nil
}
