// Compiled kernel execution: op-bodied tasks whose program was frozen
// carry a per-task kernel (task.Kernel) with every blueprint lookup
// pre-resolved. The engine runs those kernels through the tight switch
// loop below — direct runtime-hook calls with no task.Exec interface
// dispatch, a stack register file, and fused bulk load runs where the
// runtime supports them. The executor makes exactly the hook calls the
// interpreted Body would make, so runs are byte-identical either way;
// dev.NoCompile forces the interpreter for differential tests.

package kernel

import (
	"easeio/internal/task"
)

// BulkLoader is the optional Hooks extension compiled kernels use for
// fused load runs. LoadRun must behave exactly like n successive
// Load(c, v, off+j) calls — same charges in the same buckets, same
// failure word if the supply gives out mid-run, same returned sum —
// but may batch the charging and the reads when Ctx.BulkFree grants it.
type BulkLoader interface {
	Hooks
	LoadRun(c *Ctx, v *task.NVVar, off, n int) uint16
}

// initCompiled installs the program's kernel table on a freshly reset
// context. Compilation is skipped entirely when the device opts out
// (NoCompile) or the app has no frozen program or no op-bodied tasks;
// the engine then dispatches every task through its interpreted Body.
func (c *Ctx) initCompiled(app *task.App) {
	c.compiled = nil
	c.bulk = nil
	if c.Dev.NoCompile {
		return
	}
	p := app.Program()
	if p == nil {
		return
	}
	c.compiled = p.CompiledKernels()
	if c.compiled != nil {
		c.bulk, _ = c.RT.(BulkLoader)
	}
}

// kernelOf returns the compiled kernel to run for t, or nil when t must
// run interpreted.
func (c *Ctx) kernelOf(t *task.Task) *task.Kernel {
	if c.compiled == nil {
		return nil
	}
	return c.compiled[t.ID]
}

// runKernel executes one compiled task attempt. The register file lives
// on the context, not the stack: the block-recursion closure below makes
// a local file escape, which would cost one heap allocation per attempt.
// Attempts never nest, so one file per context is exact — it is zeroed
// here like a closure body's fresh locals.
func (c *Ctx) runKernel(k *task.Kernel) {
	c.kregs = [task.NumRegs]uint16{}
	c.execKOps(k.Ops, &c.kregs)
}

// execKOps is the compiled dispatch loop over one (sub-)span of resolved
// ops. Block bodies recurse with the enclosing register file, exactly
// like the interpreter.
func (c *Ctx) execKOps(ops []task.KOp, regs *[task.NumRegs]uint16) {
	rt := c.RT
	for i := 0; i < len(ops); i++ {
		op := &ops[i]
		switch op.Kind {
		case task.OpCompute:
			rt.Compute(c, op.A)
		case task.OpLoad:
			regs[op.R1] = rt.Load(c, op.Var, int(op.A))
		case task.OpStore:
			rt.Store(c, op.Var, int(op.A), regs[op.R1])
		case task.OpLoadSum:
			if c.bulk != nil {
				regs[op.R1] = c.bulk.LoadRun(c, op.Var, int(op.A), op.B)
			} else {
				var s uint16
				off := int(op.A)
				for j := 0; j < op.B; j++ {
					s += rt.Load(c, op.Var, off+j)
				}
				regs[op.R1] = s
			}
		case task.OpMovImm:
			regs[op.R1] = uint16(op.A)
		case task.OpAddImm:
			regs[op.R1] += uint16(op.A)
		case task.OpMulImm:
			regs[op.R1] *= uint16(op.A)
		case task.OpDivImm:
			regs[op.R1] /= uint16(op.A)
		case task.OpAddReg:
			regs[op.R1] += regs[op.R2]
		case task.OpMovReg:
			regs[op.R1] = regs[op.R2]
		case task.OpCallIO:
			c.noteFresh(op.Site)
			regs[op.R1] = rt.CallIO(c, op.Site, int(op.A))
		case task.OpBlockBegin:
			body := ops[i+1 : op.B]
			rt.IOBlock(c, op.Blk, func() { c.execKOps(body, regs) })
			i = op.B
		case task.OpDMACopy:
			rt.DMACopy(c, op.DMA, op.Src, op.Dst, int(op.A))
		case task.OpNext:
			c.transitioned = true
			rt.Transition(c, op.Next)
		case task.OpDone:
			c.transitioned = true
			rt.Transition(c, nil)
		}
	}
}
