package kernel

import (
	"strings"
	"testing"
	"time"

	"easeio/internal/mcu"
	"easeio/internal/mem"
	"easeio/internal/power"
	"easeio/internal/stats"
	"easeio/internal/task"
	"easeio/internal/units"
)

// testRT is a minimal runtime with no consistency machinery: variables
// live at master addresses, I/O always executes, tasks advance through a
// persistent pointer. It exists to exercise the engine itself.
type testRT struct {
	dev   *Device
	app   *task.App
	addrs map[*task.NVVar]mem.Addr
	ptr   mem.Addr
	cur   int

	boots      int
	beginTasks int
}

func (r *testRT) Name() string { return "test" }

func (r *testRT) Attach(dev *Device, app *task.App) error {
	r.dev, r.app = dev, app
	r.addrs = map[*task.NVVar]mem.Addr{}
	for _, v := range app.Vars {
		a := dev.Mem.Alloc(mem.FRAM, "app", v.Name, v.Words)
		for i, w := range v.Init {
			dev.Mem.Write(a.Add(i), w)
		}
		r.addrs[v] = a
	}
	r.ptr = dev.Mem.Alloc(mem.FRAM, "test", "ptr", 1)
	dev.Mem.Write(r.ptr, uint16(app.Entry().ID))
	return nil
}

func (r *testRT) OnBoot(c *Ctx) {
	r.boots++
	r.cur = int(r.dev.Mem.Read(r.ptr))
}

func (r *testRT) CurrentTask() *task.Task {
	if r.cur == 0xFFFF {
		return nil
	}
	return r.app.Tasks[r.cur]
}

func (r *testRT) BeginTask(c *Ctx, t *task.Task) { r.beginTasks++ }

func (r *testRT) Compute(c *Ctx, n int64) { c.ChargeCycles(n) }

func (r *testRT) Transition(c *Ctx, next *task.Task) {
	id := 0xFFFF
	if next != nil {
		id = next.ID
	}
	c.ChargeOverheadCycles(mcu.TaskTransitionCycles)
	r.dev.Mem.Write(r.ptr, uint16(id))
	r.cur = id
	r.dev.Ledger.CommitAttempt()
}

func (r *testRT) Load(c *Ctx, v *task.NVVar, i int) uint16 {
	c.ChargeMemAccess(mem.FRAM, false, false)
	return r.dev.Mem.Read(r.addrs[v].Add(i))
}

func (r *testRT) Store(c *Ctx, v *task.NVVar, i int, val uint16) {
	c.ChargeMemAccess(mem.FRAM, true, false)
	r.dev.Mem.Write(r.addrs[v].Add(i), val)
}

func (r *testRT) AddrOf(v *task.NVVar) mem.Addr { return r.addrs[v] }

func (r *testRT) CallIO(c *Ctx, s *task.IOSite, idx int) uint16 { return s.Exec(c, idx) }

func (r *testRT) IOBlock(c *Ctx, b *task.IOBlock, body func()) { body() }

func (r *testRT) DMACopy(c *Ctx, d *task.DMASite, src, dst task.Loc, words int) {
	c.RawDMA(c.ResolveLoc(src), c.ResolveLoc(dst), words, false)
}

var _ Hooks = (*testRT)(nil)

func simpleApp(bodies ...task.Body) *task.App {
	a := task.NewApp("t")
	for i, b := range bodies {
		a.AddTask("task"+string(rune('a'+i)), b)
	}
	for _, tk := range a.Tasks {
		tk.Meta.Analyzed = true
	}
	return a
}

func TestRunAppContinuous(t *testing.T) {
	a := task.NewApp("cont")
	v := a.NVInt("v")
	var t2 *task.Task
	a.AddTask("one", func(e task.Exec) {
		e.Compute(1000)
		e.Store(v, 42)
		e.Next(t2)
	})
	t2 = a.AddTask("two", func(e task.Exec) {
		e.Compute(500)
		e.Done()
	})
	for _, tk := range a.Tasks {
		tk.Meta.Analyzed = true
	}

	dev := NewDevice(power.Continuous{}, 1)
	rt := &testRT{}
	if err := RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	if dev.Run.PowerFailures != 0 {
		t.Errorf("failures = %d", dev.Run.PowerFailures)
	}
	if got := ReadVar(dev, rt, v, 0); got != 42 {
		t.Errorf("v = %d", got)
	}
	if dev.Run.TaskCommits != 2 || dev.Run.TaskAttempts != 2 {
		t.Errorf("tasks: %d/%d", dev.Run.TaskCommits, dev.Run.TaskAttempts)
	}
	// Time accounting: committed buckets must equal on-time.
	total := dev.Run.Work[stats.App].T + dev.Run.Work[stats.Overhead].T +
		dev.Run.Work[stats.Wasted].T
	if total != dev.Run.OnTime {
		t.Errorf("bucket sum %v != on-time %v", total, dev.Run.OnTime)
	}
	if dev.Run.Work[stats.App].T < 1500*time.Microsecond {
		t.Errorf("app work %v below compute total", dev.Run.Work[stats.App].T)
	}
}

func TestRunAppWithFailures(t *testing.T) {
	// Four 4 ms tasks under fixed 5 ms energy cycles: failures land
	// deterministically inside tasks, and every task still fits a cycle.
	cfg := power.TimerConfig{
		OnMin: 5 * time.Millisecond, OnMax: 5 * time.Millisecond,
		OffMin: time.Millisecond, OffMax: time.Millisecond,
	}
	body := func(next func(task.Exec)) task.Body {
		return func(e task.Exec) {
			e.Compute(4000)
			next(e)
		}
	}
	a := task.NewApp("chain")
	var t2, t3, t4 *task.Task
	a.AddTask("a", body(func(e task.Exec) { e.Next(t2) }))
	t2 = a.AddTask("b", body(func(e task.Exec) { e.Next(t3) }))
	t3 = a.AddTask("c", body(func(e task.Exec) { e.Next(t4) }))
	t4 = a.AddTask("d", body(func(e task.Exec) { e.Done() }))
	for _, tk := range a.Tasks {
		tk.Meta.Analyzed = true
	}
	dev := NewDevice(power.NewTimer(cfg), 3)
	rt := &testRT{}
	if err := RunApp(dev, rt, a); err != nil {
		t.Fatal(err)
	}
	if dev.Run.PowerFailures == 0 {
		t.Fatal("expected at least one failure")
	}
	if dev.Run.TaskAttempts <= dev.Run.TaskCommits {
		t.Errorf("attempts %d must exceed commits %d", dev.Run.TaskAttempts, dev.Run.TaskCommits)
	}
	if dev.Run.Work[stats.Wasted].T == 0 {
		t.Error("failed attempts must show as wasted work")
	}
	if rt.boots != dev.Run.PowerFailures+1 {
		t.Errorf("boots %d, failures %d", rt.boots, dev.Run.PowerFailures)
	}
	if dev.Run.WallTime <= dev.Run.OnTime {
		t.Error("wall time must include off periods")
	}
}

func TestRunAppNonTermination(t *testing.T) {
	// A 25 ms atomic task can never finish within a ≤ 20 ms energy cycle:
	// the engine must diagnose the non-termination bug (§3.5).
	a := simpleApp(func(e task.Exec) {
		e.Compute(25_000)
		e.Done()
	})
	dev := NewDevice(power.NewTimer(power.DefaultTimerConfig()), 1)
	err := RunApp(dev, &testRT{}, a)
	if err == nil || !strings.Contains(err.Error(), "non-termination") {
		t.Fatalf("err = %v, want non-termination diagnosis", err)
	}
}

func TestRunAppMissingTransition(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(10)
		// falls off the end without Next/Done
	})
	dev := NewDevice(power.Continuous{}, 1)
	err := RunApp(dev, &testRT{}, a)
	if err == nil || !strings.Contains(err.Error(), "without Next/Done") {
		t.Fatalf("err = %v", err)
	}
}

func TestChargeSlicing(t *testing.T) {
	// A failure must be able to land inside a long operation, with slice
	// granularity.
	cfg := power.TimerConfig{
		OnMin: 5 * time.Millisecond, OnMax: 5 * time.Millisecond,
		OffMin: time.Millisecond, OffMax: time.Millisecond,
	}
	executed := false
	a := simpleApp(func(e task.Exec) {
		e.Op(8*time.Millisecond, 8*units.Microjoule) // longer than the 5 ms cycle
		executed = true
		e.Done()
	})
	dev := NewDevice(power.NewTimer(cfg), 1)
	err := RunApp(dev, &testRT{}, a)
	if err == nil {
		t.Fatal("an 8 ms atomic op cannot complete in 5 ms cycles; expected non-termination")
	}
	if executed {
		t.Error("operation body observed completion despite mid-op failures")
	}
	// The failure must land near 5 ms of on-time per attempt, not at the
	// 8 ms op boundary (that is what slicing buys).
	if dev.Clock.OnTime()%(5*time.Millisecond) > 200*time.Microsecond {
		t.Logf("on-time at abort: %v", dev.Clock.OnTime())
	}
}

func TestRawDMAPartialTransfer(t *testing.T) {
	// Across many seeds, some failures land mid-transfer; re-execution
	// from a constant source must still converge to the complete copy.
	build := func() (*task.App, *task.NVVar) {
		a := task.NewApp("dma")
		init := make([]uint16, 1500)
		for i := range init {
			init[i] = uint16(i + 1)
		}
		src := a.NVConst("src", init)
		dst := a.NVBuf("dst", 1500)
		d := a.DMA("d")
		var fin *task.Task
		a.AddTask("copy", func(e task.Exec) {
			e.Compute(6500)
			e.DMACopy(d, task.VarLoc(src, 0), task.VarLoc(dst, 0), 1500) // 3 ms transfer
			e.Next(fin)
		})
		fin = a.AddTask("fin", func(e task.Exec) { e.Done() })
		for _, tk := range a.Tasks {
			tk.Meta.Analyzed = true
		}
		return a, dst
	}
	sawFailure := false
	for seed := int64(1); seed <= 20; seed++ {
		a, dst := build()
		dev := NewDevice(power.NewTimer(power.DefaultTimerConfig()), seed)
		rt := &testRT{}
		if err := RunApp(dev, rt, a); err != nil {
			t.Fatal(err)
		}
		if dev.Run.PowerFailures > 0 {
			sawFailure = true
		}
		for i := 0; i < 1500; i += 123 {
			if got := ReadVar(dev, rt, dst, i); got != uint16(i+1) {
				t.Fatalf("seed %d: dst[%d] = %d", seed, i, got)
			}
		}
	}
	if !sawFailure {
		t.Error("no seed produced a mid-run failure; test lost its teeth")
	}
}

func TestGoldenOnTime(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(2000)
		e.Done()
	})
	got, err := GoldenOnTime(func() Hooks { return &testRT{} }, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 2*time.Millisecond || got > 3*time.Millisecond {
		t.Errorf("golden time = %v", got)
	}
}

func TestWastedModeRouting(t *testing.T) {
	a := simpleApp(func(e task.Exec) {
		e.Compute(100)
		e.Done()
	})
	dev := NewDevice(power.Continuous{}, 1)
	rt := &testRT{}
	if err := rt.Attach(dev, a); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Dev: dev, RT: rt}
	ctx.PushWasted()
	ctx.ChargeCycles(1000)
	ctx.PopWasted()
	if got := dev.Ledger.Committed(stats.Wasted); got.T != time.Millisecond {
		t.Errorf("wasted = %v", got.T)
	}
	defer func() {
		if recover() == nil {
			t.Error("unbalanced PopWasted must panic")
		}
	}()
	ctx.PopWasted()
}

func TestResolveLoc(t *testing.T) {
	a := simpleApp(func(e task.Exec) { e.Done() })
	v := &task.NVVar{ID: 0, Name: "v", Words: 4}
	a.Vars = append(a.Vars, v)
	dev := NewDevice(power.Continuous{}, 1)
	rt := &testRT{}
	if err := rt.Attach(dev, a); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Dev: dev, RT: rt}
	got := ctx.ResolveLoc(task.VarLoc(v, 2))
	if got.Bank != mem.FRAM || got != rt.addrs[v].Add(2) {
		t.Errorf("var loc = %v", got)
	}
	raw := ctx.ResolveLoc(task.RawLoc(uint8(mem.LEARAM), 7))
	if raw.Bank != mem.LEARAM || raw.Word != 7 {
		t.Errorf("raw loc = %v", raw)
	}
}

func TestCtxLEAOpsComputeRealResults(t *testing.T) {
	a := simpleApp(func(e task.Exec) { e.Done() })
	dev := NewDevice(power.Continuous{}, 1)
	rt := &testRT{}
	if err := rt.Attach(dev, a); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Dev: dev, RT: rt}
	ctx.WriteLEA(0, uint16(int16(100)))
	neg := int16(-50)
	ctx.WriteLEA(1, uint16(neg))
	ctx.WriteLEA(10, uint16(int16(3)))
	ctx.WriteLEA(11, uint16(int16(4)))
	if got := ctx.LEADot(0, 10, 2); got != 100*3-50*4 {
		t.Errorf("dot = %d", got)
	}
	ctx.LEARelu(0, 2)
	if int16(ctx.ReadLEA(1)) != 0 {
		t.Error("relu did not clamp")
	}
	before := dev.Clock.OnTime()
	ctx.LEAMacs(1000)
	if dev.Clock.OnTime()-before < time.Millisecond {
		t.Error("LEA macs not charged")
	}
}
