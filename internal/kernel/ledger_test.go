package kernel

import (
	"testing"
	"time"

	"easeio/internal/stats"
	"easeio/internal/units"
)

func TestLedgerCommitAndFail(t *testing.T) {
	l := &Ledger{}
	l.Charge(false, 2*time.Millisecond, 2*units.Microjoule)
	l.Charge(true, time.Millisecond, units.Microjoule)
	if u, o := l.Pending(); u.T != 2*time.Millisecond || o.T != time.Millisecond {
		t.Fatalf("pending = %v %v", u, o)
	}

	l.CommitAttempt()
	if got := l.Committed(stats.App); got.T != 2*time.Millisecond || got.E != 2*units.Microjoule {
		t.Errorf("App = %+v", got)
	}
	if got := l.Committed(stats.Overhead); got.T != time.Millisecond {
		t.Errorf("Overhead = %+v", got)
	}
	if u, o := l.Pending(); u.T != 0 || o.T != 0 {
		t.Error("pending not drained")
	}

	l.Charge(false, 5*time.Millisecond, 0)
	l.Charge(true, time.Millisecond, 0)
	l.FailAttempt()
	if got := l.Committed(stats.Wasted); got.T != 6*time.Millisecond {
		t.Errorf("Wasted = %+v, want 6ms", got)
	}
}

func TestLedgerChargeWastedDirect(t *testing.T) {
	l := &Ledger{}
	l.ChargeWasted(3*time.Millisecond, units.Microjoule)
	if got := l.Committed(stats.Wasted); got.T != 3*time.Millisecond {
		t.Errorf("Wasted = %+v", got)
	}
	if u, o := l.Pending(); u.T != 0 || o.T != 0 {
		t.Error("direct wasted charge must not touch pending")
	}
}

func TestLedgerSpans(t *testing.T) {
	l := &Ledger{}
	l.Charge(false, time.Millisecond, 0) // before the span

	m := l.Mark()
	l.Charge(false, 4*time.Millisecond, 0)
	l.Charge(true, 2*time.Millisecond, 0)
	l.CommitSince(m)

	if got := l.Committed(stats.App); got.T != 4*time.Millisecond {
		t.Errorf("span App = %v", got.T)
	}
	if got := l.Committed(stats.Overhead); got.T != 2*time.Millisecond {
		t.Errorf("span Overhead = %v", got.T)
	}
	// The pre-span 1 ms stays pending; a failure wastes only that.
	l.FailAttempt()
	if got := l.Committed(stats.Wasted); got.T != time.Millisecond {
		t.Errorf("Wasted = %v, want 1ms", got.T)
	}
}

func TestLedgerNestedSpans(t *testing.T) {
	l := &Ledger{}
	outer := l.Mark()
	l.Charge(false, time.Millisecond, 0) // outer-only work
	inner := l.Mark()
	l.Charge(false, 2*time.Millisecond, 0)
	l.CommitSince(inner) // inner commits 2 ms
	l.Charge(false, 4*time.Millisecond, 0)
	l.CommitSince(outer) // outer commits 1 + 4 ms (not the inner 2 again)

	if got := l.Committed(stats.App); got.T != 7*time.Millisecond {
		t.Errorf("App = %v, want 7ms total", got.T)
	}
	if u, _ := l.Pending(); u.T != 0 {
		t.Errorf("pending = %v", u.T)
	}
}

func TestLedgerExport(t *testing.T) {
	l := &Ledger{}
	l.Charge(false, time.Millisecond, units.Microjoule)
	l.CommitAttempt()
	var r stats.Run
	l.Export(&r)
	if r.Work[stats.App].T != time.Millisecond || r.Work[stats.App].E != units.Microjoule {
		t.Errorf("export: %+v", r.Work[stats.App])
	}
}

func TestLedgerSpanAcrossFailPanics(t *testing.T) {
	l := &Ledger{}
	l.Charge(false, time.Millisecond, 0)
	m := l.Mark()
	l.FailAttempt()
	// The attempt boundary reset pending below the mark — CommitSince
	// must refuse to commit across it.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for span crossing attempt boundary")
		}
	}()
	l.CommitSince(m)
}
