module easeio

go 1.23
