// Command easeio-sim runs one benchmark application under one runtime and
// prints the full measurement record — a single-run view of what the
// bench harness aggregates.
//
// Usage:
//
//	easeio-sim [-app dma|temp|lea|fir|weather|branch] [-rt easeio|alpaca|ink]
//	           [-seed N] [-continuous] [-distance INCHES]
//	           [-trace out.json] [-timeline] [-gantt]
//
// -trace writes the run as Chrome trace_event JSON — open the file in
// chrome://tracing or https://ui.perfetto.dev to see power spans, task
// attempts and every I/O decision on a timeline. -timeline prints the
// same events as text lines; -gantt draws an ASCII chart.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"easeio"
	"easeio/internal/stats"
)

func main() {
	var (
		appName    = flag.String("app", "weather", "application: dma, temp, lea, fir, weather, branch")
		rtName     = flag.String("rt", "easeio", "runtime: easeio, alpaca, ink, justdo")
		seed       = flag.Int64("seed", 1, "random seed")
		continuous = flag.Bool("continuous", false, "disable power failures")
		distance   = flag.Float64("distance", 0, "if > 0, use the RF harvester at this distance (inches)")
		trace      = flag.String("trace", "", "write the run as Chrome trace_event JSON to this file (\"-\" for stdout; open in Perfetto)")
		timeline   = flag.Bool("timeline", false, "print the execution timeline (boots, failures, I/O decisions)")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart of the run")
		lint       = flag.Bool("lint", false, "run the front-end's static checks before executing")
	)
	flag.Parse()

	bench, err := buildApp(*appName)
	fail(err)
	rt, err := buildRuntime(*rtName)
	fail(err)

	opts := []easeio.Option{easeio.WithSeed(*seed)}
	switch {
	case *continuous:
		opts = append(opts, easeio.WithContinuousPower())
	case *distance > 0:
		opts = append(opts, easeio.WithRFHarvester(*distance))
	}
	// One buffer serves every observer of the run's timeline.
	var buf *easeio.TraceBuffer
	if *gantt || *timeline || *trace != "" {
		buf = &easeio.TraceBuffer{}
		opts = append(opts, easeio.WithTracer(buf))
	}
	if *lint {
		findings, err := easeio.Lint(bench.App, easeio.DefaultLintConfig())
		fail(err)
		for _, f := range findings {
			fmt.Println("lint:", f)
		}
	}

	res, err := easeio.Run(bench.App, rt, opts...)
	fail(err)

	fmt.Printf("app=%s runtime=%s seed=%d\n", res.App, res.Runtime, res.Seed)
	fmt.Printf("execution time : %v on, %v wall (%d boots, %d power failures)\n",
		res.OnTime, res.WallTime, res.PowerFailures+1, res.PowerFailures)
	fmt.Printf("work breakdown : app=%v overhead=%v wasted=%v\n",
		res.Work[stats.App].T, res.Work[stats.Overhead].T, res.Work[stats.Wasted].T)
	fmt.Printf("energy         : %v total (app=%v overhead=%v wasted=%v)\n",
		res.TotalEnergy(), res.Work[stats.App].E, res.Work[stats.Overhead].E,
		res.Work[stats.Wasted].E)
	fmt.Printf("tasks          : %d attempts, %d commits\n", res.TaskAttempts, res.TaskCommits)
	fmt.Printf("I/O            : %d executed, %d redundant, %d skipped\n",
		res.IOExecs, res.IORepeats, res.IOSkips)
	fmt.Printf("DMA            : %d executed, %d redundant, %d skipped\n",
		res.DMAExecs, res.DMARepeats, res.DMASkips)
	if len(res.PerSite) > 0 {
		names := make([]string, 0, len(res.PerSite))
		for n := range res.PerSite {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("per-site execs :")
		for _, n := range names {
			fmt.Printf(" %s=%d", n, res.PerSite[n])
		}
		fmt.Println()
	}
	fmt.Printf("output correct : %v\n", res.Correct)
	if *timeline && buf != nil {
		fmt.Println()
		buf.Dump(os.Stdout)
	}
	if *gantt && buf != nil {
		fmt.Println()
		easeio.RenderGantt(buf, 100, os.Stdout)
	}
	if *trace != "" && buf != nil {
		fail(writeTrace(*trace, buf))
	}
	if res.Stuck {
		fmt.Println("NOTE: the harvester could not recharge the capacitor; run abandoned")
	}
}

// writeTrace exports the buffered timeline as Chrome trace_event JSON to
// path ("-" streams to stdout).
func writeTrace(path string, buf *easeio.TraceBuffer) error {
	if path == "-" {
		return easeio.WriteChromeTrace(buf, os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := easeio.WriteChromeTrace(buf, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s — open in chrome://tracing or https://ui.perfetto.dev)\n", path)
	return nil
}

func buildApp(name string) (*easeio.Bench, error) {
	switch name {
	case "dma":
		return easeio.NewDMABench()
	case "temp":
		return easeio.NewTempBench()
	case "lea":
		return easeio.NewLEABench()
	case "fir":
		return easeio.NewFIRBench(false)
	case "weather":
		return easeio.NewWeatherBench(false)
	case "branch":
		return easeio.NewBranchBench()
	default:
		return nil, fmt.Errorf("unknown app %q", name)
	}
}

func buildRuntime(name string) (easeio.Runtime, error) {
	switch name {
	case "easeio":
		return easeio.NewEaseIO(), nil
	case "alpaca":
		return easeio.NewAlpaca(), nil
	case "ink":
		return easeio.NewInK(), nil
	case "justdo":
		return easeio.NewJustDo(), nil
	default:
		return nil, fmt.Errorf("unknown runtime %q", name)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easeio-sim:", err)
		os.Exit(1)
	}
}
