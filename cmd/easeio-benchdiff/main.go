// Command easeio-benchdiff is the CI bench-regression gate: it parses
// `go test -bench` output for the gated benchmark, compares the measured
// rate and allocation count against the latest tracked datapoint in the
// repository's benchmark ledger (BENCH_sweep.json), and exits non-zero
// when the measurement regresses past the tolerances.
//
// Usage:
//
//	easeio-benchdiff [-bench FILE] [-baseline FILE] [-name SUBSTRING]
//	                 [-key NAME] [-min-ratio R] [-alloc-slack N]
//
// -bench reads the benchmark output ("-" or empty reads stdin). Lines
// whose first field is exactly -name are parsed for the custom metrics
// "runs/s" and "allocs/run" (the value is the field preceding the unit).
// With -count > 1 several lines match; the gate scores the best of them
// — max runs/s, min allocs/run — because the gate asks "can this commit
// still reach the tracked rate", and the minimum over repetitions is
// noise, not capability. A matched line missing either metric is a parse
// error, not a skip: a gate that silently scores half a line (or passes
// on none) hides a broken bench invocation. So is a line whose name
// carries the testing package's -N GOMAXPROCS suffix ("…/pooled-8"):
// the ledger is recorded at -cpu 1, so a suffixed name means the bench
// ran without it and the numbers are not comparable.
//
// The baseline is datapoints[-1].results[key] of -baseline: the ledger
// appends a datapoint whenever performance changes materially, so the
// latest entry is the current expectation.
//
// Tolerances: the run fails when measured runs/s drops below -min-ratio
// times the tracked rate (default 0.75 — CI runners are slower and
// noisier than the machine that recorded the ledger), or when measured
// allocs/run exceeds the tracked count by more than -alloc-slack
// (default 2 — allocation counts are nearly deterministic, so even a
// small rise means a new allocation on a per-run path).
//
// Escape hatch: a PR that intentionally changes sweep performance (a
// slower-but-correct fix, or a speedup worth re-anchoring on) must
// refresh the ledger in the same PR — run the refresh command in
// BENCH_sweep.json's description and append the new datapoint with a
// note. The gate then compares future PRs against the new expectation.
//
// Exit status: 0 within tolerance, 1 on regression, 2 on usage or parse
// errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type metrics struct {
	runsPerS     float64
	allocsPerRun float64
	hasRate      bool
	hasAllocs    bool
}

func main() {
	var (
		benchPath  = flag.String("bench", "-", "benchmark output file (\"-\" = stdin)")
		basePath   = flag.String("baseline", "BENCH_sweep.json", "benchmark ledger with tracked datapoints")
		name       = flag.String("name", "BenchmarkSweepThroughput/pooled", "benchmark name substring to gate on")
		key        = flag.String("key", "pooled", "results key of the tracked datapoint")
		minRatio   = flag.Float64("min-ratio", 0.75, "minimum measured/tracked runs/s ratio")
		allocSlack = flag.Float64("alloc-slack", 2, "maximum allocs/run increase over tracked")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchPath != "" && *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatalf(2, "benchdiff: %v", err)
		}
		defer f.Close()
		in = f
	}
	got, lines, err := parseBench(in, *name)
	if err != nil {
		fatalf(2, "benchdiff: %v", err)
	}
	if lines == 0 {
		fatalf(2, "benchdiff: no %q lines in benchmark output", *name)
	}
	if !got.hasRate || !got.hasAllocs {
		fatalf(2, "benchdiff: %q lines carry no runs/s + allocs/run metrics", *name)
	}

	tracked, commit, err := readBaseline(*basePath, *key)
	if err != nil {
		fatalf(2, "benchdiff: %v", err)
	}

	fmt.Printf("benchdiff: %s over %d line(s): measured %.0f runs/s, %.2f allocs/run\n",
		*name, lines, got.runsPerS, got.allocsPerRun)
	fmt.Printf("benchdiff: tracked (%s, %q): %.0f runs/s, %.2f allocs/run\n",
		*basePath, commit, tracked.runsPerS, tracked.allocsPerRun)

	failed := false
	if floor := *minRatio * tracked.runsPerS; got.runsPerS < floor {
		fmt.Printf("benchdiff: FAIL: %.0f runs/s is below %.2fx the tracked rate (floor %.0f)\n",
			got.runsPerS, *minRatio, floor)
		failed = true
	}
	if ceil := tracked.allocsPerRun + *allocSlack; got.allocsPerRun > ceil {
		fmt.Printf("benchdiff: FAIL: %.2f allocs/run exceeds tracked %.2f + %.0f slack\n",
			got.allocsPerRun, tracked.allocsPerRun, *allocSlack)
		failed = true
	}
	if failed {
		fmt.Println("benchdiff: if this change is intentional, refresh BENCH_sweep.json in the same PR (see its description for the refresh command) and document why in the datapoint note")
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (rate %.2fx tracked, allocs %+.2f)\n",
		got.runsPerS/tracked.runsPerS, got.allocsPerRun-tracked.allocsPerRun)
}

// parseBench scans benchmark output for lines of the gated benchmark and
// returns the best measurement across them plus the matched line count.
// Only lines whose first field is exactly name count; a matched line
// that does not carry both metrics, or a name wearing the testing
// package's -N GOMAXPROCS suffix, is an error — the gate must refuse to
// score output it cannot compare against the ledger.
func parseBench(r io.Reader, name string) (metrics, int, error) {
	var best metrics
	lines := 0
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != name {
			if isCPUSuffixed(fields[0], name) {
				return best, lines, fmt.Errorf(
					"benchmark name %q carries a GOMAXPROCS suffix (want exactly %q); run the bench with -cpu 1, the configuration the ledger was recorded at", fields[0], name)
			}
			continue
		}
		var m metrics
		for i := 0; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "runs/s":
				m.runsPerS, m.hasRate = v, true
			case "allocs/run":
				m.allocsPerRun, m.hasAllocs = v, true
			}
		}
		if !m.hasRate || !m.hasAllocs {
			missing := "runs/s"
			if m.hasRate {
				missing = "allocs/run"
			}
			return best, lines, fmt.Errorf(
				"benchmark line %q has no %s metric; the gate needs both runs/s and allocs/run on every %q line", line, missing, name)
		}
		lines++
		if !best.hasRate || m.runsPerS > best.runsPerS {
			best.runsPerS, best.hasRate = m.runsPerS, true
		}
		if !best.hasAllocs || m.allocsPerRun < best.allocsPerRun {
			best.allocsPerRun, best.hasAllocs = m.allocsPerRun, true
		}
	}
	return best, lines, sc.Err()
}

// isCPUSuffixed reports whether got is name plus the "-N" suffix the
// testing package appends when GOMAXPROCS != 1 — the signature of a
// bench run without -cpu 1.
func isCPUSuffixed(got, name string) bool {
	rest, ok := strings.CutPrefix(got, name+"-")
	if !ok || rest == "" {
		return false
	}
	for _, r := range rest {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// readBaseline extracts the latest tracked datapoint's results[key].
func readBaseline(path, key string) (metrics, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return metrics{}, "", err
	}
	var ledger struct {
		Datapoints []struct {
			Commit  string `json:"commit"`
			Results map[string]struct {
				RunsPerS     float64 `json:"runs_per_s"`
				AllocsPerRun float64 `json:"allocs_per_run"`
			} `json:"results"`
		} `json:"datapoints"`
	}
	if err := json.Unmarshal(raw, &ledger); err != nil {
		return metrics{}, "", fmt.Errorf("%s: %w", path, err)
	}
	if len(ledger.Datapoints) == 0 {
		return metrics{}, "", fmt.Errorf("%s: no datapoints", path)
	}
	last := ledger.Datapoints[len(ledger.Datapoints)-1]
	res, ok := last.Results[key]
	if !ok {
		return metrics{}, "", fmt.Errorf("%s: latest datapoint has no %q results", path, key)
	}
	if res.RunsPerS <= 0 {
		return metrics{}, "", fmt.Errorf("%s: tracked runs_per_s must be positive", path)
	}
	return metrics{runsPerS: res.RunsPerS, allocsPerRun: res.AllocsPerRun, hasRate: true, hasAllocs: true},
		last.Commit, nil
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
