package main

import (
	"strings"
	"testing"
)

const gateName = "BenchmarkSweepThroughput/pooled"

// TestParseBench pins the parser's contract: exact-name lines with both
// metrics score best-of; a GOMAXPROCS-suffixed name or a matched line
// missing a metric is a hard parse error (the gate must never pass on
// output it cannot compare against the ledger); everything else is
// skipped silently.
func TestParseBench(t *testing.T) {
	cases := []struct {
		name       string
		input      string
		wantLines  int
		wantRate   float64
		wantAllocs float64
		wantErr    string
	}{
		{
			name:       "single line",
			input:      "BenchmarkSweepThroughput/pooled 200 60000 ns/op 290000 runs/s 3.00 allocs/run\n",
			wantLines:  1,
			wantRate:   290000,
			wantAllocs: 3,
		},
		{
			name: "best of repetitions",
			input: "BenchmarkSweepThroughput/pooled 200 60000 ns/op 280000 runs/s 4.00 allocs/run\n" +
				"BenchmarkSweepThroughput/pooled 200 60000 ns/op 291000 runs/s 3.00 allocs/run\n" +
				"BenchmarkSweepThroughput/pooled 200 60000 ns/op 285000 runs/s 3.50 allocs/run\n",
			wantLines:  3,
			wantRate:   291000,
			wantAllocs: 3,
		},
		{
			name: "unrelated lines skipped",
			input: "goos: linux\n" +
				"BenchmarkCheckThroughput/fig6 100 1000 ns/op\n" +
				"BenchmarkSweepThroughput/pooled 200 60000 ns/op 290000 runs/s 3.00 allocs/run\n" +
				"PASS\n",
			wantLines:  1,
			wantRate:   290000,
			wantAllocs: 3,
		},
		{
			name:    "missing allocs column",
			input:   "BenchmarkSweepThroughput/pooled 200 60000 ns/op 290000 runs/s\n",
			wantErr: "no allocs/run metric",
		},
		{
			name:    "missing rate column",
			input:   "BenchmarkSweepThroughput/pooled 200 60000 ns/op 3.00 allocs/run\n",
			wantErr: "no runs/s metric",
		},
		{
			name:    "cpu-suffixed name",
			input:   "BenchmarkSweepThroughput/pooled-8 200 60000 ns/op 290000 runs/s 3.00 allocs/run\n",
			wantErr: "GOMAXPROCS suffix",
		},
		{
			name: "mixed good line does not mask a broken one",
			input: "BenchmarkSweepThroughput/pooled 200 60000 ns/op 290000 runs/s 3.00 allocs/run\n" +
				"BenchmarkSweepThroughput/pooled 200 60000 ns/op 295000 runs/s\n",
			wantErr: "no allocs/run metric",
		},
		{
			name:      "non-numeric suffix is a different benchmark",
			input:     "BenchmarkSweepThroughput/pooled-batch 200 60000 ns/op 290000 runs/s 3.00 allocs/run\n",
			wantLines: 0,
		},
		{
			name:      "empty input",
			input:     "",
			wantLines: 0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, lines, err := parseBench(strings.NewReader(tc.input), gateName)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseBench: %v", err)
			}
			if lines != tc.wantLines {
				t.Fatalf("matched %d lines, want %d", lines, tc.wantLines)
			}
			if tc.wantLines == 0 {
				return
			}
			if got.runsPerS != tc.wantRate || got.allocsPerRun != tc.wantAllocs {
				t.Fatalf("best = %.0f runs/s, %.2f allocs/run; want %.0f, %.2f",
					got.runsPerS, got.allocsPerRun, tc.wantRate, tc.wantAllocs)
			}
			if !got.hasRate || !got.hasAllocs {
				t.Fatalf("metrics incomplete: %+v", got)
			}
		})
	}
}

// TestIsCPUSuffixed covers the suffix detector's edges.
func TestIsCPUSuffixed(t *testing.T) {
	cases := []struct {
		got  string
		want bool
	}{
		{gateName + "-8", true},
		{gateName + "-16", true},
		{gateName, false},
		{gateName + "-", false},
		{gateName + "-8x", false},
		{gateName + "-batch", false},
		{"Benchmark-8", false},
	}
	for _, tc := range cases {
		if got := isCPUSuffixed(tc.got, gateName); got != tc.want {
			t.Errorf("isCPUSuffixed(%q) = %v, want %v", tc.got, got, tc.want)
		}
	}
}
