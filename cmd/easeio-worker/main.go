// Command easeio-worker is the fleet execution half of the distributed
// sweep service: it dials a coordinator's fleet listener (easeio-served
// -fleet -fleet-listen), leases sweep and check shards, executes them
// over the paper's registered benchmark blueprints, and ships the binary
// results back. Workers are stateless — all durability lives in the
// coordinator's WAL — so killing and restarting one (or pointing ten at
// the same coordinator) never changes a merged result, only how fast it
// arrives.
//
// Usage:
//
//	easeio-worker -addr host:8341 [-name NAME] [-poll 50ms] [-smoke]
//
// -name defaults to host-pid and labels this worker's leases in the
// coordinator's metrics. -smoke boots an in-process coordinator with a
// TCP fleet listener, runs two workers against it, kills and restarts
// one mid-sweep, and verifies both a merged sweep summary and a merged
// nested (k=2) check report are byte-identical to the single-process
// engines — the self-test the Makefile's fleet-smoke target runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"syscall"
	"time"

	"easeio/internal/check"
	"easeio/internal/experiments"
	"easeio/internal/fleet"
	"easeio/internal/service"
)

func main() {
	var (
		addr  = flag.String("addr", "", "coordinator fleet listener address (host:port)")
		name  = flag.String("name", defaultName(), "worker name reported to the coordinator")
		poll  = flag.Duration("poll", 50*time.Millisecond, "idle poll interval when no shards are pending")
		smoke = flag.Bool("smoke", false, "run the in-process fleet self-test and exit")
	)
	flag.Parse()

	reg := service.NewRegistry()
	if err := service.RegisterPaperBenches(reg); err != nil {
		log.Fatal(err)
	}

	if *smoke {
		if err := runSmoke(reg); err != nil {
			log.Fatalf("fleet-smoke: FAIL: %v", err)
		}
		fmt.Println("fleet-smoke: PASS")
		return
	}
	if *addr == "" {
		log.Fatal("easeio-worker: -addr is required (or use -smoke)")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("easeio-worker dialing", "addr", *addr, "name", *name)
	if err := fleet.RunTCPWorker(ctx, *addr, *name, reg, *poll); err != nil {
		log.Fatal(err)
	}
	logger.Info("easeio-worker stopped")
}

// defaultName labels this process's leases: host-pid is unique enough
// per coordinator and readable in the per-worker metric series.
func defaultName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runSmoke is the end-to-end fleet self-test: a real coordinator with a
// real WAL and TCP listener, two TCP workers, one of which is killed
// while holding leases and then restarted. The lease TTL must recycle
// the dead worker's shards and the merged summary must equal the
// in-process engine's, byte for byte.
func runSmoke(reg *service.Registry) error {
	dir, err := os.MkdirTemp("", "easeio-fleet-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	coord, err := fleet.New(fleet.CoordinatorConfig{
		WALPath:  filepath.Join(dir, "smoke.wal"),
		Source:   reg,
		LeaseTTL: 250 * time.Millisecond,
		Metrics:  fleet.NewMetrics(),
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go fleet.ServeFleet(ln, coord)
	addr := ln.Addr().String()

	startWorker := func(name string) context.CancelFunc {
		ctx, cancel := context.WithCancel(context.Background())
		go fleet.RunTCPWorker(ctx, addr, name, reg, time.Millisecond)
		return cancel
	}
	stable := startWorker("smoke-stable")
	defer stable()
	victim := startWorker("smoke-victim")

	id, err := coord.Submit(fleet.Spec{
		Mode: fleet.ModeSweep, App: "fir", Runtime: "EaseIO",
		Runs: 48, BaseSeed: 3, Shards: 8,
	})
	if err != nil {
		return err
	}

	// Kill the victim once the sweep is visibly under way, then restart
	// it under a new name: the restarted process must pick up recycled
	// leases like any fresh worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if done, _, _ := coord.Progress(id); done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	victim()
	restarted := startWorker("smoke-restarted")
	defer restarted()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := coord.Wait(ctx, id)
	if err != nil {
		return err
	}
	if len(res.Errs) > 0 {
		return fmt.Errorf("sweep shards reported errors: %v", res.Errs)
	}

	factory, _ := reg.LookupFactory("fir")
	want, err := experiments.RunMany(
		experiments.Config{Runs: 48, BaseSeed: 3, Workers: 2}, factory, experiments.EaseIO)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(res.Summary, want) {
		return fmt.Errorf("fleet summary differs from in-process engine:\n%+v\nvs\n%+v",
			res.Summary, want)
	}

	// Second leg: a subtree-sharded nested check over the same fleet.
	// The k=2 job's level-1 frontier ships as checkpoint-bearing subtree
	// work units, and the merged report must render byte-identically to
	// the in-process checker.
	cid, err := coord.Submit(fleet.Spec{
		Mode: fleet.ModeCheck, App: "sensor", Runtime: "EaseIO",
		Exhaustive: true, Failures: 2, Shards: 4,
	})
	if err != nil {
		return err
	}
	cctx, ccancel := context.WithTimeout(context.Background(), time.Minute)
	defer ccancel()
	cres, err := coord.Wait(cctx, cid)
	if err != nil {
		return err
	}
	sensorFactory, _ := reg.LookupFactory("sensor")
	wantRep, err := check.Run(context.Background(), sensorFactory, experiments.EaseIO,
		check.Config{Exhaustive: true, Failures: 2, Workers: 2})
	if err != nil {
		return err
	}
	if cres.Report.Render() != wantRep.Render() {
		return fmt.Errorf("fleet k=2 report differs from in-process checker:\n--- fleet ---\n%s--- direct ---\n%s",
			cres.Report.Render(), wantRep.Render())
	}
	return nil
}
