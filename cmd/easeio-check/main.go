// Command easeio-check model-checks crash consistency: it enumerates
// every charge-slice boundary of a golden continuous-power run, replays
// the app with a single power failure injected at each explored boundary,
// and differentially compares final non-volatile memory, the output
// verdict and the work ledger against the golden run.
//
// Usage:
//
//	easeio-check [-app NAME|all] [-runtime NAME|all] [-k N] [-exhaustive]
//	             [-grid N] [-seed S] [-off D] [-workers N] [-fromboot] [-broken]
//
// Replays restore golden-prefix checkpoints and simulate only the
// post-failure suffix by default; -fromboot re-simulates every replay
// from boot instead. Both modes render byte-identical reports.
//
// -k explores failure-during-recovery schedules: every schedule injects
// up to k failures, each landing on a charge-slice boundary of the
// previous failure's recovery trajectory (see the checkpoint tree in
// internal/check). The default k=1 is the single-failure checker.
//
// -app accepts the registered blueprint names (easeio-served's registry)
// plus "fig6", the paper's Figure 6 WAR-via-DMA scenario. -broken checks
// fig6 under EaseIO with regional privatization disabled — the seeded-bug
// demonstration: the checker must report a minimal failing schedule.
//
// Exit status: 0 when every checked cell passes, 1 on divergence, 2 on
// usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"easeio/internal/check"
	"easeio/internal/core"
	"easeio/internal/experiments"
	"easeio/internal/kernel"
	"easeio/internal/service"
)

func main() {
	var (
		app        = flag.String("app", "fig6", "blueprint to check (a registered name, \"fig6\", or \"all\")")
		runtimeF   = flag.String("runtime", "EaseIO", "runtime to check (Alpaca, InK, EaseIO, JustDo, or \"all\")")
		failures   = flag.Int("k", 1, fmt.Sprintf("failures per schedule: k > 1 explores failure-during-recovery (max %d)", check.MaxFailures))
		exhaustive = flag.Bool("exhaustive", false, "replay every candidate failure point (sound mode)")
		grid       = flag.Int("grid", 128, "coarse grid size of the adaptive exploration")
		seed       = flag.Int64("seed", 0, "seed for the golden run and every replay")
		off        = flag.Duration("off", time.Millisecond, "recharge duration of the injected failure")
		workers    = flag.Int("workers", 0, "parallel replays (0 = GOMAXPROCS); results are worker-invariant")
		fromBoot   = flag.Bool("fromboot", false, "re-simulate every replay from boot instead of restoring golden-prefix checkpoints (slower; reports are byte-identical)")
		broken     = flag.Bool("broken", false, "seeded-bug demo: disable regional privatization (fig6 under EaseIO must fail)")
	)
	flag.Parse()

	if err := check.ValidateFailures(*failures); err != nil {
		usageError(err)
	}
	cfg := check.Config{
		Seed:       *seed,
		Failures:   *failures,
		Off:        *off,
		Grid:       *grid,
		Exhaustive: *exhaustive,
		FromBoot:   *fromBoot,
		Workers:    *workers,
	}
	if *broken {
		cfg.NewRuntime = func() kernel.Hooks {
			c := core.DefaultConfig()
			c.RegionalPrivatization = false
			return core.NewWithConfig(c)
		}
		cfg.Label = "EaseIO/NoRegions"
	}

	targets, err := resolveTargets(*app)
	if err != nil {
		usageError(err)
	}
	kinds, err := resolveKinds(*runtimeF)
	if err != nil {
		usageError(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reports, err := check.Matrix(ctx, targets, kinds, cfg)
	for _, rep := range reports {
		fmt.Println(rep.Render())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "easeio-check:", err)
		os.Exit(1)
	}
	if len(reports) > 1 {
		fmt.Println(check.RenderMatrix(reports))
	}
	for _, rep := range reports {
		if !rep.Passed() {
			os.Exit(1)
		}
	}
}

// resolveTargets maps -app to check targets through the same registry the
// service uses, plus the checker's built-in fig6 scenario.
func resolveTargets(name string) ([]check.Target, error) {
	reg := service.NewRegistry()
	if err := service.RegisterPaperBenches(reg); err != nil {
		return nil, err
	}
	if name == "all" {
		targets := []check.Target{{Name: "fig6", New: check.Fig6Bench}}
		for _, n := range reg.Names() {
			bp, _ := reg.Lookup(n)
			targets = append(targets, check.Target{Name: n, New: bp.Factory})
		}
		return targets, nil
	}
	if name == "fig6" {
		return []check.Target{{Name: "fig6", New: check.Fig6Bench}}, nil
	}
	bp, ok := reg.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown app %q (want fig6, all, or one of %s)",
			name, strings.Join(reg.Names(), ", "))
	}
	return []check.Target{{Name: name, New: bp.Factory}}, nil
}

func resolveKinds(name string) ([]experiments.RuntimeKind, error) {
	if name == "all" {
		return []experiments.RuntimeKind{
			experiments.Alpaca, experiments.InK, experiments.EaseIO, experiments.JustDo,
		}, nil
	}
	kind, err := experiments.ParseRuntimeKind(name)
	if err != nil {
		return nil, err
	}
	return []experiments.RuntimeKind{kind}, nil
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "easeio-check:", err)
	flag.Usage()
	os.Exit(2)
}
