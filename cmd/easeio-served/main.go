// Command easeio-served fronts the simulation sweep service over
// HTTP/JSON: named application blueprints, a bounded job queue with
// configurable worker concurrency, per-job cancellation, and a
// Prometheus-style metrics endpoint.
//
// Usage:
//
//	easeio-served [-addr :8340] [-queue 64] [-jobs N] [-pprof] [-log text|json] [-smoke]
//	              [-fleet] [-wal PATH] [-fleet-workers N] [-fleet-listen ADDR]
//
// -pprof mounts the Go profiling endpoints under /debug/pprof/ (off by
// default). Logs are structured (log/slog) on stderr; every record about
// a job carries its "job" ID.
//
// -fleet switches job execution to the distributed coordinator: every
// submitted job is sharded, journaled to the -wal file (crash-consistent;
// restarting the server resumes in-flight jobs), and executed by fleet
// workers. -fleet-workers starts that many in-process loopback workers;
// -fleet-listen additionally accepts remote easeio-worker processes over
// TCP. Results are byte-identical to the in-process path — the fleet
// changes scheduling and durability, never results.
//
// Submit a sweep and watch it:
//
//	curl -s -X POST localhost:8340/jobs \
//	    -d '{"app":"fir","runtime":"EaseIO","runs":1000,"base_seed":1}'
//	curl -s localhost:8340/jobs/1
//	curl -s localhost:8340/metrics
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight sweeps drain, queued jobs are cancelled. -smoke boots the
// full stack on a loopback port, pushes one job through the HTTP API,
// checks the result and the metrics, and exits — the self-test the
// Makefile's serve-smoke target runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"easeio/internal/fleet"
	"easeio/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8340", "HTTP listen address")
		queue   = flag.Int("queue", 64, "job queue capacity (backpressure bound)")
		jobs    = flag.Int("jobs", max(2, runtime.GOMAXPROCS(0)/2), "concurrent sweep jobs")
		pprofOn = flag.Bool("pprof", false, "mount the Go profiling endpoints under /debug/pprof/")
		logFmt  = flag.String("log", "text", "structured log format on stderr: text or json")
		smoke   = flag.Bool("smoke", false, "boot on a loopback port, run one job through the HTTP API, verify, exit")

		fleetOn      = flag.Bool("fleet", false, "execute jobs through the distributed fleet coordinator")
		walPath      = flag.String("wal", "easeio-fleet.wal", "fleet job journal path (crash-consistent; reopened on restart)")
		fleetWorkers = flag.Int("fleet-workers", 2, "in-process loopback fleet workers (with -fleet)")
		fleetListen  = flag.String("fleet-listen", "", "TCP address accepting remote easeio-worker processes (with -fleet)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFmt)
	if err != nil {
		log.Fatal(err)
	}

	reg := service.NewRegistry()
	reg.SetLogger(logger)
	if err := service.RegisterPaperBenches(reg); err != nil {
		log.Fatal(err)
	}
	metrics := service.NewMetrics()
	mgrOpts := []service.ManagerOption{service.WithManagerLogger(logger)}
	srvOpts := []service.ServerOption{service.WithAccessLog(logger)}

	var coord *fleet.Coordinator
	var stopFleet func()
	if *fleetOn {
		fm := fleet.NewMetrics()
		coord, err = fleet.New(fleet.CoordinatorConfig{
			WALPath: *walPath, Source: reg, Metrics: fm,
		})
		if err != nil {
			log.Fatal(err)
		}
		mgrOpts = append(mgrOpts, service.WithFleet(coord))
		srvOpts = append(srvOpts, service.WithFleetMetrics(fm))
		stopFleet, err = startFleetWorkers(logger, coord, reg, *fleetWorkers, *fleetListen)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("fleet mode", "wal", *walPath, "loopback_workers", *fleetWorkers,
			"listen", *fleetListen)
	}

	mgr := service.NewManager(reg, metrics, *queue, *jobs, mgrOpts...)
	if *pprofOn {
		srvOpts = append(srvOpts, service.WithPprof())
	}
	handler := service.NewServer(mgr, reg, metrics, srvOpts...).Handler()

	if *smoke {
		err := runSmoke(handler, mgr)
		if stopFleet != nil {
			stopFleet()
			coord.Close()
		}
		if err != nil {
			log.Fatalf("smoke: FAIL: %v", err)
		}
		fmt.Println("smoke: PASS")
		return
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("easeio-served listening", "addr", *addr, "workers", *jobs,
		"queue", *queue, "pprof", *pprofOn, "blueprints", strings.Join(reg.Names(), " "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	logger.Info("shutting down: draining in-flight sweeps")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	if err := mgr.Shutdown(sctx); err != nil {
		logger.Error("job manager shutdown", "error", err)
	}
	if stopFleet != nil {
		stopFleet()
		if err := coord.Close(); err != nil {
			logger.Error("fleet coordinator shutdown", "error", err)
		}
	}
}

// startFleetWorkers launches the in-process loopback workers and, when
// listen is non-empty, the TCP listener for remote easeio-worker
// processes. The returned stop joins the loopback workers and closes
// the listener.
func startFleetWorkers(logger *slog.Logger, coord *fleet.Coordinator,
	reg *service.Registry, workers int, listen string) (func(), error) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("local-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fleet.RunLoopback(ctx, coord, name, reg, 10*time.Millisecond); err != nil {
				logger.Error("loopback worker failed", "worker", name, "error", err)
			}
		}()
	}
	var ln net.Listener
	if listen != "" {
		var err error
		ln, err = net.Listen("tcp", listen)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		go func() {
			if err := fleet.ServeFleet(ln, coord); err != nil {
				logger.Error("fleet listener failed", "error", err)
			}
		}()
	}
	return func() {
		if ln != nil {
			ln.Close()
		}
		cancel()
		wg.Wait()
	}, nil
}

// buildLogger returns a slog logger writing to stderr in the requested
// format.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("easeio-served: unknown log format %q (want text or json)", format)
	}
}

// runSmoke exercises the full service loop over a real TCP socket: boot,
// health, submit, poll to completion, verify the summary and the metrics.
func runSmoke(handler http.Handler, mgr *service.Manager) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	// Health.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	// Submit one modest sweep.
	body := strings.NewReader(`{"app":"dma","runtime":"EaseIO","runs":32,"base_seed":1,"workers":2}`)
	resp, err = client.Post(base+"/jobs", "application/json", body)
	if err != nil {
		return err
	}
	var st service.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}

	// Poll to completion.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %d did not finish in time (state %s, %d/%d runs)",
				st.ID, st.State, st.DoneRuns, st.TotalRuns)
		}
		resp, err = client.Get(fmt.Sprintf("%s/jobs/%d", base, st.ID))
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.State == "succeeded" || st.State == "failed" || st.State == "cancelled" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != "succeeded" {
		return fmt.Errorf("job ended %s: %s", st.State, st.Error)
	}
	if st.Summary == nil || st.Summary.Runs != 32 {
		return fmt.Errorf("summary missing or wrong run count: %+v", st.Summary)
	}
	if st.Summary.CorrectRuns != 32 {
		return fmt.Errorf("only %d/32 correct runs", st.Summary.CorrectRuns)
	}

	// Metrics must reflect the completed job.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	raw := make([]byte, 1<<16)
	n, _ := resp.Body.Read(raw)
	resp.Body.Close()
	text := string(raw[:n])
	for _, want := range []string{
		"easeio_jobs_completed_total 1",
		"easeio_runs_completed_total 32",
		"easeio_wasted_work_ratio",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return mgr.Shutdown(sctx)
}
