// Command easeio-bench regenerates the tables and figures of the EaseIO
// paper's evaluation (EuroSys 2023, §5) from the simulator.
//
// Usage:
//
//	easeio-bench [-exp all|table3|fig7|table4|fig8|fig10|fig11|fig12|table5|table6|fig13] [-runs N] [-seed S]
//
// Each experiment prints the same rows or series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record. After the experiments
// a timing breakdown reports where the host's wall-clock time went, per
// experiment and — for sweep experiments — per engine stage (build vs.
// run), so performance regressions are diagnosable from run artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"easeio/internal/apps"
	"easeio/internal/check"
	"easeio/internal/experiments"
)

// expTiming is one experiment's host-side cost record.
type expTiming struct {
	name   string
	wall   time.Duration
	stages experiments.StageTimings
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (all, table1, table3, fig7, table4, fig8, fig10, fig11, fig12, table5, table6, fig13, sensitivity, loggers, diurnal, check; check is never part of all)")
		runs   = flag.Int("runs", 1000, "seeded runs per configuration (the paper uses 1000)")
		seed   = flag.Int64("seed", 1, "base seed")
		csvDir = flag.String("csv", "", "if set, also write <dir>/<experiment>.csv data files")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	writeCSV := func(ds experiments.Dataset) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, ds.Name+".csv")
		if err := os.WriteFile(path, []byte(ds.CSV()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("(wrote %s)\n", path)
	}

	cfg := experiments.Config{Runs: *runs, BaseSeed: *seed}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()

	// timed brackets one experiment, recording its wall time and — when
	// the experiment threads stages through its Config — the engine's
	// stage breakdown.
	var timings []expTiming
	timed := func(name string, stages *experiments.StageTimings, f func()) {
		expStart := time.Now()
		f()
		et := expTiming{name: name, wall: time.Since(expStart)}
		if stages != nil {
			et.stages = *stages
		}
		timings = append(timings, et)
	}

	if want("table1") {
		timed("table1", nil, func() {
			fmt.Println(experiments.RenderTable1(experiments.Table1()))
		})
	}
	if want("table3") {
		timed("table3", nil, func() {
			rows, err := experiments.Table3()
			fail(err)
			fmt.Println(experiments.RenderTable3(rows))
		})
	}
	if want("fig7") || want("table4") || want("fig8") {
		ucfg := cfg
		ucfg.Timings = &experiments.StageTimings{}
		timed("unitask", ucfg.Timings, func() {
			uni, err := experiments.UniTask(ucfg)
			fail(err)
			if want("fig7") {
				fmt.Println(uni.RenderFigure7())
			}
			if want("table4") {
				fmt.Println(uni.RenderTable4())
			}
			if want("fig8") {
				fmt.Println(uni.RenderFigure8())
			}
			writeCSV(uni.Dataset())
		})
	}
	if want("fig10") || want("fig11") || want("fig12") {
		mcfg := cfg
		mcfg.Timings = &experiments.StageTimings{}
		timed("multitask", mcfg.Timings, func() {
			multi, err := experiments.MultiTask(mcfg)
			fail(err)
			if want("fig10") {
				fmt.Println(multi.RenderFigure10())
			}
			if want("fig11") {
				fmt.Println(multi.RenderFigure11())
			}
			if want("fig12") {
				fmt.Println(multi.RenderFigure12())
			}
			writeCSV(multi.Dataset())
		})
	}
	if want("table5") {
		t5cfg := cfg
		if *exp == "all" && t5cfg.Runs > 300 {
			t5cfg.Runs = 300 // 2 modes × 3 runtimes: keep "all" quick
		}
		t5cfg.Timings = &experiments.StageTimings{}
		timed("table5", t5cfg.Timings, func() {
			t5, err := experiments.Table5(t5cfg)
			fail(err)
			fmt.Println(t5.Render())
			writeCSV(t5.Dataset())
		})
	}
	if want("table6") {
		timed("table6", nil, func() {
			t6, err := experiments.Table6()
			fail(err)
			fmt.Println(t6.Render())
			writeCSV(t6.Dataset())
		})
	}
	if want("sensitivity") {
		scfg := experiments.DefaultSensitivityConfig()
		if *exp == "sensitivity" {
			scfg.Runs = *runs
		}
		timed("sensitivity", nil, func() {
			points, err := experiments.Sensitivity(scfg)
			fail(err)
			fmt.Println(experiments.RenderSensitivity(points))
			writeCSV(experiments.SensitivityDataset(points))
		})
	}
	if want("loggers") {
		lcfg := cfg
		if *exp == "all" && lcfg.Runs > 300 {
			lcfg.Runs = 300
		}
		lcfg.Timings = &experiments.StageTimings{}
		timed("loggers", lcfg.Timings, func() {
			rows, err := experiments.Loggers(lcfg)
			fail(err)
			fmt.Println(experiments.RenderLoggers(rows))
			writeCSV(experiments.LoggersDataset(rows))
		})
	}
	if want("diurnal") {
		timed("diurnal", nil, func() {
			dcfg := experiments.DefaultDiurnalConfig()
			rows, err := experiments.Diurnal(dcfg)
			fail(err)
			fmt.Println(experiments.RenderDiurnal(rows))
			writeCSV(experiments.DiurnalDataset(rows))
		})
	}
	// The failure-point check runs only on request: exhaustive replay of
	// the uni-task apps is far slower than a figure sweep, so "all" (the
	// paper-regeneration pass) skips it. See cmd/easeio-check for the full
	// matrix and the seeded-bug demo.
	if *exp == "check" {
		timed("check", nil, func() {
			ctx := context.Background()
			targets := []check.Target{
				{Name: "fig6", New: check.Fig6Bench},
				{Name: "dma", New: func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) }},
				{Name: "temp", New: func() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }},
				{Name: "lea", New: func() (*apps.Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) }},
			}
			kinds := []experiments.RuntimeKind{experiments.EaseIO, experiments.JustDo}
			reports, err := check.Matrix(ctx, targets, kinds, check.Config{Seed: *seed, Grid: 64})
			fail(err)
			fmt.Println(check.RenderMatrix(reports))
			for _, rep := range reports {
				if !rep.Passed() {
					fmt.Println(rep.Render())
				}
			}
		})
	}
	if want("fig13") {
		fcfg := experiments.DefaultFig13Config()
		if *exp == "fig13" && *runs != 1000 {
			fcfg.Runs = *runs
		}
		timed("fig13", nil, func() {
			f13, err := experiments.Fig13(fcfg)
			fail(err)
			fmt.Println(f13.Render())
			writeCSV(f13.Dataset())
		})
	}
	if !anyExperiment(*exp) {
		fmt.Fprintf(os.Stderr, "easeio-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if len(timings) > 0 {
		fmt.Println("timing breakdown (host wall clock):")
		for _, t := range timings {
			if t.stages.Wall > 0 {
				fmt.Printf("  %-12s %8v  (sweeps: %s)\n",
					t.name, t.wall.Round(time.Millisecond), t.stages)
			} else {
				fmt.Printf("  %-12s %8v\n", t.name, t.wall.Round(time.Millisecond))
			}
		}
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func anyExperiment(name string) bool {
	known := "all table1 table3 fig7 table4 fig8 fig10 fig11 fig12 table5 table6 fig13 sensitivity loggers diurnal check"
	for _, k := range strings.Fields(known) {
		if name == k {
			return true
		}
	}
	return false
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easeio-bench:", err)
		os.Exit(1)
	}
}
