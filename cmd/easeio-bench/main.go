// Command easeio-bench regenerates the tables and figures of the EaseIO
// paper's evaluation (EuroSys 2023, §5) from the simulator.
//
// Usage:
//
//	easeio-bench [-exp all|table3|fig7|table4|fig8|fig10|fig11|fig12|table5|table6|fig13] [-runs N] [-seed S]
//
// Each experiment prints the same rows or series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"easeio/internal/apps"
	"easeio/internal/check"
	"easeio/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (all, table1, table3, fig7, table4, fig8, fig10, fig11, fig12, table5, table6, fig13, sensitivity, loggers, diurnal, check; check is never part of all)")
		runs   = flag.Int("runs", 1000, "seeded runs per configuration (the paper uses 1000)")
		seed   = flag.Int64("seed", 1, "base seed")
		csvDir = flag.String("csv", "", "if set, also write <dir>/<experiment>.csv data files")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	writeCSV := func(ds experiments.Dataset) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, ds.Name+".csv")
		if err := os.WriteFile(path, []byte(ds.CSV()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("(wrote %s)\n", path)
	}

	cfg := experiments.Config{Runs: *runs, BaseSeed: *seed}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()

	if want("table1") {
		fmt.Println(experiments.RenderTable1(experiments.Table1()))
	}
	if want("table3") {
		rows, err := experiments.Table3()
		fail(err)
		fmt.Println(experiments.RenderTable3(rows))
	}
	if want("fig7") || want("table4") || want("fig8") {
		uni, err := experiments.UniTask(cfg)
		fail(err)
		if want("fig7") {
			fmt.Println(uni.RenderFigure7())
		}
		if want("table4") {
			fmt.Println(uni.RenderTable4())
		}
		if want("fig8") {
			fmt.Println(uni.RenderFigure8())
		}
		writeCSV(uni.Dataset())
	}
	if want("fig10") || want("fig11") || want("fig12") {
		multi, err := experiments.MultiTask(cfg)
		fail(err)
		if want("fig10") {
			fmt.Println(multi.RenderFigure10())
		}
		if want("fig11") {
			fmt.Println(multi.RenderFigure11())
		}
		if want("fig12") {
			fmt.Println(multi.RenderFigure12())
		}
		writeCSV(multi.Dataset())
	}
	if want("table5") {
		t5cfg := cfg
		if *exp == "all" && t5cfg.Runs > 300 {
			t5cfg.Runs = 300 // 2 modes × 3 runtimes: keep "all" quick
		}
		t5, err := experiments.Table5(t5cfg)
		fail(err)
		fmt.Println(t5.Render())
		writeCSV(t5.Dataset())
	}
	if want("table6") {
		t6, err := experiments.Table6()
		fail(err)
		fmt.Println(t6.Render())
		writeCSV(t6.Dataset())
	}
	if want("sensitivity") {
		scfg := experiments.DefaultSensitivityConfig()
		if *exp == "sensitivity" {
			scfg.Runs = *runs
		}
		points, err := experiments.Sensitivity(scfg)
		fail(err)
		fmt.Println(experiments.RenderSensitivity(points))
		writeCSV(experiments.SensitivityDataset(points))
	}
	if want("loggers") {
		lcfg := cfg
		if *exp == "all" && lcfg.Runs > 300 {
			lcfg.Runs = 300
		}
		rows, err := experiments.Loggers(lcfg)
		fail(err)
		fmt.Println(experiments.RenderLoggers(rows))
		writeCSV(experiments.LoggersDataset(rows))
	}
	if want("diurnal") {
		dcfg := experiments.DefaultDiurnalConfig()
		rows, err := experiments.Diurnal(dcfg)
		fail(err)
		fmt.Println(experiments.RenderDiurnal(rows))
		writeCSV(experiments.DiurnalDataset(rows))
	}
	// The failure-point check runs only on request: exhaustive replay of
	// the uni-task apps is far slower than a figure sweep, so "all" (the
	// paper-regeneration pass) skips it. See cmd/easeio-check for the full
	// matrix and the seeded-bug demo.
	if *exp == "check" {
		ctx := context.Background()
		targets := []check.Target{
			{Name: "fig6", New: check.Fig6Bench},
			{Name: "dma", New: func() (*apps.Bench, error) { return apps.NewDMAApp(apps.DefaultDMAConfig()) }},
			{Name: "temp", New: func() (*apps.Bench, error) { return apps.NewTempApp(apps.DefaultTempConfig()) }},
			{Name: "lea", New: func() (*apps.Bench, error) { return apps.NewLEAApp(apps.DefaultLEAConfig()) }},
		}
		kinds := []experiments.RuntimeKind{experiments.EaseIO, experiments.JustDo}
		reports, err := check.Matrix(ctx, targets, kinds, check.Config{Seed: *seed, Grid: 64})
		fail(err)
		fmt.Println(check.RenderMatrix(reports))
		for _, rep := range reports {
			if !rep.Passed() {
				fmt.Println(rep.Render())
			}
		}
	}
	if want("fig13") {
		fcfg := experiments.DefaultFig13Config()
		if *exp == "fig13" && *runs != 1000 {
			fcfg.Runs = *runs
		}
		f13, err := experiments.Fig13(fcfg)
		fail(err)
		fmt.Println(f13.Render())
		writeCSV(f13.Dataset())
	}
	if !anyExperiment(*exp) {
		fmt.Fprintf(os.Stderr, "easeio-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func anyExperiment(name string) bool {
	known := "all table1 table3 fig7 table4 fig8 fig10 fig11 fig12 table5 table6 fig13 sensitivity loggers diurnal check"
	for _, k := range strings.Fields(known) {
		if name == k {
			return true
		}
	}
	return false
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "easeio-bench:", err)
		os.Exit(1)
	}
}
